package experiments

import (
	"fmt"
	"io"

	"lmbalance/internal/core"
	"lmbalance/internal/rng"
	"lmbalance/internal/sim"
	"lmbalance/internal/theory"
	"lmbalance/internal/topology"
	"lmbalance/internal/trace"
	"lmbalance/internal/workload"
)

// ScalingNs are the network sizes of the size-independence study that every
// scale runs. The sparse core (O(nnz+n) memory, balancing cost independent
// of n) makes n = 4096 tractable; the dense representation previously
// capped the sweep at 1024.
var ScalingNs = []int{16, 64, 256, 1024, 4096}

// ScalingMillionN is the headline size the sharded engine adds at full
// scale: a million processors in one in-process run.
const ScalingMillionN = 1_000_000

// ScalingSizes returns the sweep sizes for a scale: quick keeps the
// CI-sized list, full appends the million-processor row.
func ScalingSizes(scale Scale) []int {
	sizes := append([]int(nil), ScalingNs...)
	if scale == ScaleFull {
		sizes = append(sizes, ScalingMillionN)
	}
	return sizes
}

// scalingShards picks the within-run shard count for one network size.
// The one-producer model always runs sharded: its workload is
// workload.Sparse, and the sharded engine's active-set fast path is what
// makes 8n steps at large n affordable (the sequential engine would pay
// O(n) pattern calls per tick for one active processor). The mixed
// workload runs sequentially below 65536 processors — at small n the
// per-run worker pool over 100 runs is the better parallelism — and
// sharded above.
func scalingShards(n int) int {
	if n < 64 {
		return n
	}
	return 64
}

// scalingMixedRuns returns the repetition count of the mixed-workload part
// for one size. All sizes the paper's hardware could reach use the full
// run count; the million-processor row pools 10⁶ processors per run, so a
// handful of runs already pins its per-processor averages, and 100 runs of
// a ~500 M-balancing-op simulation would dominate the whole sweep.
func scalingMixedRuns(scale Scale, n int) int {
	runs := scale.runs()
	if n >= ScalingMillionN && runs > 3 {
		runs = 3
	}
	return runs
}

// ScalingRow is one network size's measurement.
type ScalingRow struct {
	N int
	// Runs is the number of repetitions behind the one-producer ratio.
	Runs int
	// MixedRuns is the number of repetitions behind the mixed-workload
	// columns (smaller only for the million-processor row).
	MixedRuns int
	// RatioOneProducer is the measured E(l₁)/E(lᵢ) in the
	// one-processor-generator model.
	RatioOneProducer float64
	// Fix and Limit are the corresponding closed forms.
	Fix, Limit float64
	// SpreadMixed is the tail load spread under the uniform mixed
	// workload.
	SpreadMixed float64
	// BalanceOpsPerProcStep is balancing operations per processor per
	// step under the mixed workload — the per-node organizational cost.
	BalanceOpsPerProcStep float64
}

// ScalingResult is the Theorem 2 headline reproduction: the balancing
// quality of the purely local algorithm does not degrade with network
// size, and the per-processor cost stays flat.
type ScalingResult struct {
	Rows  []ScalingRow
	Steps int
	Runs  int
}

// Scaling measures the expected-load ratio (one-producer model) and the
// mixed-workload spread across network sizes — 16 up to one million
// processors at full scale.
func Scaling(scale Scale, seed uint64) (*ScalingResult, error) {
	out := &ScalingResult{Runs: scale.runs()}
	params := core.Params{F: 1.1, Delta: 1, C: 4}
	for i, n := range ScalingSizes(scale) {
		n := n
		runs := scale.runs()
		mixedRuns := scalingMixedRuns(scale, n)
		// Scale the horizon with n so the per-processor load is large
		// enough (≈8 packets) that the ±1 integer granularity does not
		// swamp the expectation the theory speaks about.
		steps := 2000
		if 8*n > steps {
			steps = 8 * n
		}
		out.Steps = steps
		// One-producer ratio, on the sharded engine's sparse fast path.
		// Only the final-step snapshot is read, so the per-step load scan
		// is strided out entirely (StatsEvery = steps samples just the
		// last tick).
		cfg := sim.Config{
			N: n, Steps: steps, Runs: runs, Seed: seed + uint64(i),
			SnapshotAt: []int{steps - 1},
			Shards:     scalingShards(n),
			StatsEvery: steps,
			NewBalancer: func(run int, r *rng.RNG) (sim.Balancer, error) {
				return core.NewSystem(n, params, topology.NewGlobal(n), r)
			},
			NewPattern: func(run int, r *rng.RNG) (workload.Pattern, error) {
				return workload.OneProducer{}, nil
			},
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("scaling n=%d producer: %w", n, err)
		}
		accs := res.Snapshots[steps-1]
		gen := accs[0].Mean()
		others := 0.0
		for _, a := range accs[1:] {
			others += a.Mean()
		}
		others /= float64(n - 1)

		// Mixed workload spread. Sequential (runs-parallel) below 65536
		// processors, sharded above; the million-processor row strides
		// the per-step statistics to every 5th tick to bound the O(n)
		// scan cost.
		mixed := sim.Config{
			N: n, Steps: 500, Runs: mixedRuns, Seed: seed + 1000 + uint64(i),
			NewBalancer: func(run int, r *rng.RNG) (sim.Balancer, error) {
				return core.NewSystem(n, params, topology.NewGlobal(n), r)
			},
			NewPattern: func(run int, r *rng.RNG) (workload.Pattern, error) {
				return workload.Uniform{GenP: 0.5, ConP: 0.4}, nil
			},
		}
		if n >= 65536 {
			mixed.Shards = scalingShards(n)
			mixed.StatsEvery = 5
		}
		mres, err := sim.Run(mixed)
		if err != nil {
			return nil, fmt.Errorf("scaling n=%d mixed: %w", n, err)
		}
		spread, cnt := 0.0, 0
		for s := 375; s < 500; s++ {
			if !mres.Spread.Sampled(s) {
				continue
			}
			spread += mres.Spread.At(s).Mean()
			cnt++
		}
		spread /= float64(cnt)
		perProcStep := float64(mres.CoreMetrics.BalanceOps) / float64(mixedRuns) / float64(n) / 500

		out.Rows = append(out.Rows, ScalingRow{
			N:                     n,
			Runs:                  runs,
			MixedRuns:             mixedRuns,
			RatioOneProducer:      gen / others,
			Fix:                   theory.FIX(n, params.Delta, params.F),
			Limit:                 theory.FixLimit(params.Delta, params.F),
			SpreadMixed:           spread,
			BalanceOpsPerProcStep: perProcStep,
		})
	}
	return out, nil
}

// Render writes the size-independence table.
func (r *ScalingResult) Render(w io.Writer) error {
	if err := header(w, fmt.Sprintf("Theorem 2 scaling: network-size independence (f=1.1, δ=1, %d runs)", r.Runs)); err != nil {
		return err
	}
	tb := trace.NewTable("balance quality and per-node cost vs network size",
		"n", "runs (1p/mixed)", "ratio (1-producer)", "FIX", "δ/(δ+1−f)", "spread (mixed)", "balance ops/proc/step")
	for _, row := range r.Rows {
		tb.AddRow(row.N, fmt.Sprintf("%d/%d", row.Runs, row.MixedRuns),
			row.RatioOneProducer, row.Fix, row.Limit,
			row.SpreadMixed, row.BalanceOpsPerProcStep)
	}
	return tb.WriteText(w)
}
