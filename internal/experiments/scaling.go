package experiments

import (
	"fmt"
	"io"

	"lmbalance/internal/core"
	"lmbalance/internal/rng"
	"lmbalance/internal/sim"
	"lmbalance/internal/theory"
	"lmbalance/internal/topology"
	"lmbalance/internal/trace"
	"lmbalance/internal/workload"
)

// ScalingNs are the network sizes of the size-independence study. The
// sparse core (O(nnz+n) memory, balancing cost independent of n) makes
// n = 4096 tractable; the dense representation previously capped the sweep
// at 1024.
var ScalingNs = []int{16, 64, 256, 1024, 4096}

// scalingRuns returns the repetition count for one network size. The
// simulation engine itself is O(n·steps) per run regardless of the
// balancer, so the largest sizes use fewer repetitions to keep the sweep
// tractable; their per-processor averages still pool thousands of
// processors per run.
func scalingRuns(scale Scale, n int) int {
	runs := scale.runs()
	if n >= 2048 {
		runs = (runs + 4) / 5
		if runs < 2 {
			runs = 2
		}
	}
	return runs
}

// ScalingRow is one network size's measurement.
type ScalingRow struct {
	N int
	// Runs is the number of independent repetitions behind this row.
	Runs int
	// RatioOneProducer is the measured E(l₁)/E(lᵢ) in the
	// one-processor-generator model.
	RatioOneProducer float64
	// Fix and Limit are the corresponding closed forms.
	Fix, Limit float64
	// SpreadMixed is the tail load spread under the uniform mixed
	// workload, normalized per processor count below in Render.
	SpreadMixed float64
	// BalanceOpsPerProcStep is balancing operations per processor per
	// step under the mixed workload — the per-node organizational cost.
	BalanceOpsPerProcStep float64
}

// ScalingResult is the Theorem 2 headline reproduction: the balancing
// quality of the purely local algorithm does not degrade with network
// size, and the per-processor cost stays flat.
type ScalingResult struct {
	Rows  []ScalingRow
	Steps int
	Runs  int
}

// Scaling measures the expected-load ratio (one-producer model) and the
// mixed-workload spread across network sizes 16..1024.
func Scaling(scale Scale, seed uint64) (*ScalingResult, error) {
	out := &ScalingResult{Runs: scale.runs()}
	params := core.Params{F: 1.1, Delta: 1, C: 4}
	for i, n := range ScalingNs {
		n := n
		runs := scalingRuns(scale, n)
		// Scale the horizon with n so the per-processor load is large
		// enough (≈8 packets) that the ±1 integer granularity does not
		// swamp the expectation the theory speaks about.
		steps := 2000
		if 8*n > steps {
			steps = 8 * n
		}
		out.Steps = steps
		// One-producer ratio.
		cfg := sim.Config{
			N: n, Steps: steps, Runs: runs, Seed: seed + uint64(i),
			SnapshotAt: []int{steps - 1},
			NewBalancer: func(run int, r *rng.RNG) (sim.Balancer, error) {
				return core.NewSystem(n, params, topology.NewGlobal(n), r)
			},
			NewPattern: func(run int, r *rng.RNG) (workload.Pattern, error) {
				return workload.OneProducer{}, nil
			},
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("scaling n=%d producer: %w", n, err)
		}
		accs := res.Snapshots[steps-1]
		gen := accs[0].Mean()
		others := 0.0
		for _, a := range accs[1:] {
			others += a.Mean()
		}
		others /= float64(n - 1)

		// Mixed workload spread.
		mixed := sim.Config{
			N: n, Steps: 500, Runs: runs, Seed: seed + 1000 + uint64(i),
			NewBalancer: func(run int, r *rng.RNG) (sim.Balancer, error) {
				return core.NewSystem(n, params, topology.NewGlobal(n), r)
			},
			NewPattern: func(run int, r *rng.RNG) (workload.Pattern, error) {
				return workload.Uniform{GenP: 0.5, ConP: 0.4}, nil
			},
		}
		mres, err := sim.Run(mixed)
		if err != nil {
			return nil, fmt.Errorf("scaling n=%d mixed: %w", n, err)
		}
		spread := 0.0
		for s := 375; s < 500; s++ {
			spread += mres.Spread.At(s).Mean()
		}
		spread /= 125
		perProcStep := float64(mres.CoreMetrics.BalanceOps) / float64(runs) / float64(n) / 500

		out.Rows = append(out.Rows, ScalingRow{
			N:                     n,
			Runs:                  runs,
			RatioOneProducer:      gen / others,
			Fix:                   theory.FIX(n, params.Delta, params.F),
			Limit:                 theory.FixLimit(params.Delta, params.F),
			SpreadMixed:           spread,
			BalanceOpsPerProcStep: perProcStep,
		})
	}
	return out, nil
}

// Render writes the size-independence table.
func (r *ScalingResult) Render(w io.Writer) error {
	if err := header(w, fmt.Sprintf("Theorem 2 scaling: network-size independence (f=1.1, δ=1, %d runs)", r.Runs)); err != nil {
		return err
	}
	tb := trace.NewTable("balance quality and per-node cost vs network size",
		"n", "runs", "ratio (1-producer)", "FIX", "δ/(δ+1−f)", "spread (mixed)", "balance ops/proc/step")
	for _, row := range r.Rows {
		tb.AddRow(row.N, row.Runs, row.RatioOneProducer, row.Fix, row.Limit,
			row.SpreadMixed, row.BalanceOpsPerProcStep)
	}
	return tb.WriteText(w)
}
