package experiments

import (
	"fmt"
	"io"
	"time"

	"lmbalance/internal/netsim"
	"lmbalance/internal/trace"
)

// FaultRow is one fault configuration's measurement.
type FaultRow struct {
	DropP       float64
	CrashCount  int
	Spread      int
	MsgsPerOp   float64
	AbortedFrac float64
	Timeouts    int64
	SelfRelease int64
	Dropped     int64
	Conserved   bool
}

// FaultResult measures how gracefully the freeze/ack/transfer protocol
// degrades under an unreliable network: a sweep over control-message drop
// rates crossed with fail-stop crash counts. The paper assumes a reliable
// synchronous network; this extension quantifies the price of dropping
// that assumption — balancing quality (spread) and organizational cost
// (messages per completed operation, abort fraction) as faults increase,
// with packet conservation checked exactly on every cell.
type FaultResult struct {
	Rows  []FaultRow
	N     int
	Steps int
}

// FaultSweep runs the grid. Scale selects the per-cell step count (the
// cells are single runs; the protocol counters are high-volume already).
func FaultSweep(scale Scale, seed uint64) (*FaultResult, error) {
	const n = 64
	steps := 1000
	if scale == ScaleFull {
		steps = 3000
	}
	out := &FaultResult{N: n, Steps: steps}
	// The netcost harness's heterogeneous workload: a loaded quarter and a
	// draining rest, so balancing traffic never dries up.
	gen := make([]float64, n)
	con := make([]float64, n)
	for i := range gen {
		if i < n/4 {
			gen[i], con[i] = 0.9, 0.1
		} else {
			gen[i], con[i] = 0.1, 0.3
		}
	}
	drops := []float64{0, 0.05, 0.2, 0.5}
	crashCounts := []int{0, 4, 16}
	cell := 0
	for _, crashes := range crashCounts {
		for _, dropP := range drops {
			cell++
			schedule := make([]netsim.Crash, crashes)
			for i := range schedule {
				// Stagger crashes over nodes and over the middle half of
				// the run so recovery windows overlap ongoing balancing.
				schedule[i] = netsim.Crash{
					Node:   (i*7 + 3) % n,
					AtStep: steps/4 + i*(steps/2)/max(crashes, 1),
				}
			}
			res, err := netsim.Run(netsim.Config{
				N: n, Delta: 2, F: 1.2, Steps: steps,
				GenP: gen, ConP: con, Seed: seed + uint64(cell),
				Faults: netsim.Faults{
					DropP:        dropP,
					Crashes:      schedule,
					Seed:         (seed ^ (0xfa17 << 16)) + uint64(cell),
					TimeoutTicks: 25,
					Tick:         50 * time.Microsecond,
				},
			})
			if err != nil {
				return nil, fmt.Errorf("faults drop=%.2f crashes=%d: %w", dropP, crashes, err)
			}
			var initiated, completed, timeouts, selfRel, dropped int64
			for _, nd := range res.Nodes {
				initiated += nd.Initiated
				completed += nd.Completed
				timeouts += nd.Timeouts
				selfRel += nd.FreezeExpired
				dropped += nd.Dropped + nd.LostAtCrash
			}
			row := FaultRow{
				DropP: dropP, CrashCount: crashes, Spread: res.Spread(),
				Timeouts: timeouts, SelfRelease: selfRel, Dropped: dropped,
				Conserved: res.Conserved(),
			}
			if completed > 0 {
				row.MsgsPerOp = float64(res.Messages()) / float64(completed)
			}
			if initiated > 0 {
				row.AbortedFrac = float64(initiated-completed) / float64(initiated)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Render writes the fault-sensitivity table.
func (r *FaultResult) Render(w io.Writer) error {
	if err := header(w, fmt.Sprintf("Fault sensitivity of the trigger protocol (%d nodes, %d steps)", r.N, r.Steps)); err != nil {
		return err
	}
	tb := trace.NewTable("control-message loss × fail-stop crashes",
		"drop", "crashes", "final spread", "msgs per op", "abort frac",
		"timeouts", "self-releases", "msgs lost", "conserved")
	for _, row := range r.Rows {
		conserved := "yes"
		if !row.Conserved {
			conserved = "NO"
		}
		tb.AddRow(row.DropP, row.CrashCount, row.Spread, row.MsgsPerOp,
			row.AbortedFrac, row.Timeouts, row.SelfRelease, row.Dropped, conserved)
	}
	return tb.WriteText(w)
}
