package experiments

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"lmbalance/internal/obs"
	"lmbalance/internal/rng"
	"lmbalance/internal/serve"
	"lmbalance/internal/trace"
	"lmbalance/internal/workload"
)

// AnatomyComponent is one slice of the unit sojourn decomposition,
// aggregated across a set of nodes: its mean and its share of the total
// unit sojourn.
type AnatomyComponent struct {
	Name   string
	Count  int64
	MeanMS float64
	Share  float64 // of the summed unit sojourn
}

// AnatomyPoll is one health-monitor poll during the drive, the raw
// material of the alert-vs-breach timeline.
type AnatomyPoll struct {
	AtMS      float64
	Alerting  bool
	BurnShort float64
	BurnLong  float64
	BadTotal  float64 // since-start bad completion fraction
	ObsTotal  float64 // since-start completions
}

// AnatomyArm is one workload shape (steady control vs injected spike)
// through the full journey pipeline: the per-component decomposition of
// unit sojourn, hot-vs-cold attribution, and the monitor's alert
// timeline.
type AnatomyArm struct {
	Mode      string // "steady", "spike"
	Envelope  string
	Submitted int64
	Completed int64

	Components []AnatomyComponent // ingest_wait, queue, transfer, service (all nodes)
	HotQueueMS float64            // mean queue component on the hot nodes
	UnitMeanMS float64            // mean unit sojourn, all nodes
	UnitP99MS  float64
	HotP99MS   float64 // unit sojourn p99, hot nodes only
	ColdP99MS  float64
	MeanHops   float64

	Alerts             int64
	FirstAlertMS       float64 // -1 if the monitor never alerted
	BudgetAtAlert      float64 // fraction of the run's error budget spent at first alert
	BudgetExhaustMS    float64 // -1 if the run never exhausted its budget
	FinalBadFrac       float64 // since-start bad fraction at the last poll
	Polls              []AnatomyPoll
	ComponentVsUnitErr float64 // |Σ components − unit sojourn| / unit sojourn
}

// SojournAnatomyResult decomposes the serving sojourn into its journey
// components and demonstrates the health monitor's early warning: under
// an injected load spike the multi-window burn-rate alert fires while
// the run's overall error budget is still mostly unspent, i.e. before
// the end-to-end SLO is breached; the steady control stays healthy.
type SojournAnatomyResult struct {
	N           int
	SLO         obs.SLO
	Demand      workload.BoundedPareto
	HotFrac     float64
	HotN        int
	ServiceRate float64
	Arms        []AnatomyArm
}

// components of the unit sojourn, in pipeline order.
var anatomyComponents = []string{"ingest_wait", "queue", "transfer", "service"}

// SojournAnatomy runs the steady control and the spike arm at n=8 over
// TCP, each under the health monitor, and decomposes every completed
// unit's sojourn into ingest-wait / queue / transfer / service from the
// journey stamps carried on the wire.
func SojournAnatomy(scale Scale, seed uint64) (*SojournAnatomyResult, error) {
	const (
		n            = 8
		conP         = 1.0
		stepInterval = 200 * time.Microsecond
	)
	// The first envelope window is a warmup: connection setup and the
	// balancer's first reaction to load are a genuine transient, so the
	// monitor's baseline snapshot waits it out — an operator watches a
	// long-running service, not its first 300ms.
	//
	// Quick scale runs as a smoke test on arbitrary CI hardware, where a
	// single oversubscribed core both adds tens of ms of scheduler
	// latency to every sojourn and caps effective service capacity far
	// below the nominal ConP/StepInterval rate. Its steady arm therefore
	// offers much less load (so the control stays unsaturated even on one
	// core) and its SLO threshold is loose enough that only the injected
	// spike (hundreds of ms of queueing) crosses it. The tight
	// production-shaped threshold and rates are full scale's, which
	// generates the published artifact.
	sloText := "p95 < 250ms over 120ms/360ms burn 2"
	pollPeriod := 15 * time.Millisecond
	warmup := 300 * time.Millisecond
	steadyEnv, spikeEnv := "75x300ms,150x1500ms", "75x300ms,150x700ms,12000x300ms,150x500ms"
	if scale == ScaleFull {
		sloText = "p95 < 25ms over 120ms/360ms burn 2"
		pollPeriod = 25 * time.Millisecond
		warmup = 500 * time.Millisecond
		steadyEnv, spikeEnv = "300x500ms,800x4000ms", "300x500ms,800x1800ms,12000x500ms,800x1700ms"
	}
	slo, err := obs.ParseSLO(sloText)
	if err != nil {
		return nil, err
	}
	out := &SojournAnatomyResult{
		N:           n,
		SLO:         slo,
		Demand:      workload.BoundedPareto{Alpha: 1.5, Lo: 1, Hi: 20},
		HotFrac:     0.7,
		HotN:        n / 4,
		ServiceRate: conP / stepInterval.Seconds(),
	}
	for _, armSpec := range []struct{ mode, env string }{
		{"steady", steadyEnv},
		{"spike", spikeEnv},
	} {
		arm, err := runAnatomyArm(armSpec.mode, armSpec.env, out, conP, stepInterval, pollPeriod, warmup, seed)
		if err != nil {
			return nil, fmt.Errorf("anatomy %s: %w", armSpec.mode, err)
		}
		out.Arms = append(out.Arms, *arm)
	}
	// The spike must trip the monitor; the control must not.
	if a := out.armFor("spike"); a.Alerts == 0 {
		return nil, fmt.Errorf("anatomy: injected spike never tripped the burn-rate alert (%d polls)", len(a.Polls))
	}
	if a := out.armFor("steady"); a.Alerts != 0 {
		return nil, fmt.Errorf("anatomy: steady control alerted %d times", a.Alerts)
	}
	return out, nil
}

func (r *SojournAnatomyResult) armFor(mode string) *AnatomyArm {
	for i := range r.Arms {
		if r.Arms[i].Mode == mode {
			return &r.Arms[i]
		}
	}
	return nil
}

func runAnatomyArm(mode, envText string, cfg *SojournAnatomyResult,
	conP float64, stepInterval, pollPeriod, warmup time.Duration, seed uint64) (*AnatomyArm, error) {
	env, err := workload.ParseEnvelope(envText)
	if err != nil {
		return nil, err
	}
	arrivals, err := workload.ArrivalSpec{
		Env: env, Demand: cfg.Demand, Horizon: env.Period(),
	}.Schedule(rng.New(seed))
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	sc, err := serve.StartServeCluster(serve.ClusterSpec{
		N: cfg.N, Delta: 2, F: 1.2,
		ConP: conP, StepInterval: stepInterval,
		Seed: seed, Obs: reg,
	})
	if err != nil {
		return nil, err
	}
	dbg, err := obs.ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		sc.DrainAndStop(time.Second)
		return nil, err
	}
	defer dbg.Close()

	mon := obs.NewMonitor(obs.MonitorConfig{
		URLs:   []string{dbg.URL()},
		SLO:    cfg.SLO,
		Tracer: reg.Tracer(),
	})
	arm := &AnatomyArm{Mode: mode, Envelope: env.String(), FirstAlertMS: -1, BudgetExhaustMS: -1}

	// Drive the monitor by hand on a fixed cadence so the alert
	// timeline is captured poll by poll. The baseline snapshot waits
	// out the warmup window so the rolling SLO state starts from the
	// steady regime.
	start := time.Now()
	var (
		pollMu   sync.Mutex
		pollStop = make(chan struct{})
		pollDone = make(chan struct{})
	)
	record := func() {
		doc := mon.Poll()
		pollMu.Lock()
		arm.Polls = append(arm.Polls, AnatomyPoll{
			AtMS:      time.Since(start).Seconds() * 1e3,
			Alerting:  doc.Alerting,
			BurnShort: doc.BurnShort,
			BurnLong:  doc.BurnLong,
			BadTotal:  doc.BadTotal,
			ObsTotal:  doc.ObsTotal,
		})
		pollMu.Unlock()
	}
	go func() {
		defer close(pollDone)
		select {
		case <-pollStop:
			return
		case <-time.After(warmup):
		}
		mon.Poll() // baseline snapshot
		tick := time.NewTicker(pollPeriod)
		defer tick.Stop()
		for {
			select {
			case <-pollStop:
				return
			case <-tick.C:
				record()
			}
		}
	}()

	spec := serve.LoadSpec{HotFrac: cfg.HotFrac, HotN: cfg.HotN}
	res, err := serve.Drive(sc.Addrs(), arrivals, spec, seed+1, 30*time.Second)
	close(pollStop)
	<-pollDone
	record() // final state after the drive
	if err != nil {
		sc.DrainAndStop(time.Second)
		return nil, err
	}
	cres, stats, err := sc.DrainAndStop(30 * time.Second)
	if err != nil {
		return nil, err
	}
	if !cres.Conserved() || !cres.JobsConserved() {
		return nil, fmt.Errorf("conservation violated")
	}
	if stats.UnitsCompleted != stats.UnitsAccepted {
		return nil, fmt.Errorf("%d units stranded", stats.UnitsAccepted-stats.UnitsCompleted)
	}
	arm.Submitted, arm.Completed = res.Submitted, res.Completed

	// Decomposition from the journey histograms. Every histogram was
	// registered by the servers; Registry.Histogram hands back the
	// existing instance.
	all := make([]int, cfg.N)
	hot := make([]int, 0, cfg.HotN)
	cold := make([]int, 0, cfg.N-cfg.HotN)
	for i := 0; i < cfg.N; i++ {
		all[i] = i
		if i < cfg.HotN {
			hot = append(hot, i)
		} else {
			cold = append(cold, i)
		}
	}
	unitCount, unitSum := int64(0), 0.0
	for _, node := range all {
		h := reg.Histogram(serve.UnitSojournMetric(node), obs.SojournBuckets)
		unitCount += h.Count()
		unitSum += h.Sum()
	}
	compTotal := 0.0
	for _, comp := range anatomyComponents {
		count, sum := int64(0), 0.0
		for _, node := range all {
			h := reg.Histogram(serve.JourneyMetric(node, comp), obs.SojournBuckets)
			count += h.Count()
			sum += h.Sum()
		}
		c := AnatomyComponent{Name: comp, Count: count}
		if count > 0 {
			c.MeanMS = sum / float64(count) * 1e3
		}
		if unitSum > 0 {
			c.Share = sum / unitSum
		}
		compTotal += sum
		arm.Components = append(arm.Components, c)
	}
	if unitCount > 0 {
		arm.UnitMeanMS = unitSum / float64(unitCount) * 1e3
	}
	if unitSum > 0 {
		arm.ComponentVsUnitErr = math.Abs(compTotal-unitSum) / unitSum
	}
	// The decomposition must account for the unit sojourn: the four
	// components sum to it exactly up to clamping of sub-clock skews.
	if arm.ComponentVsUnitErr > 0.05 {
		return nil, fmt.Errorf("components sum to %.2fms vs unit sojourn %.2fms (%.1f%% off)",
			compTotal/float64(unitCount)*1e3, arm.UnitMeanMS, arm.ComponentVsUnitErr*100)
	}
	arm.UnitP99MS = mergedQuantile(reg, all, serve.UnitSojournMetric, 0.99) * 1e3
	arm.HotP99MS = mergedQuantile(reg, hot, serve.UnitSojournMetric, 0.99) * 1e3
	arm.ColdP99MS = mergedQuantile(reg, cold, serve.UnitSojournMetric, 0.99) * 1e3
	hotQ := 0.0
	hotQCount := int64(0)
	for _, node := range hot {
		h := reg.Histogram(serve.JourneyMetric(node, "queue"), obs.SojournBuckets)
		hotQ += h.Sum()
		hotQCount += h.Count()
	}
	if hotQCount > 0 {
		arm.HotQueueMS = hotQ / float64(hotQCount) * 1e3
	}
	hopsCount, hopsSum := int64(0), 0.0
	for _, node := range all {
		h := reg.Histogram(serve.HopsMetric(node), serve.HopBuckets)
		hopsCount += h.Count()
		hopsSum += h.Sum()
	}
	if hopsCount > 0 {
		arm.MeanHops = hopsSum / float64(hopsCount)
	}

	// Alert timeline vs the run's overall error budget: the monitor is
	// early warning exactly when the first alert lands while most of
	// the whole-run budget (1−q of all completions) is still unspent.
	if len(arm.Polls) == 0 {
		return nil, fmt.Errorf("monitor never polled (drive shorter than the %v warmup?)", warmup)
	}
	final := arm.Polls[len(arm.Polls)-1]
	arm.FinalBadFrac = final.BadTotal
	budgetCount := (1 - cfg.SLO.Quantile) * final.ObsTotal
	for _, p := range arm.Polls {
		bad := p.BadTotal * p.ObsTotal
		if arm.FirstAlertMS < 0 && p.Alerting {
			arm.FirstAlertMS = p.AtMS
			if budgetCount > 0 {
				arm.BudgetAtAlert = bad / budgetCount
			}
		}
		if arm.BudgetExhaustMS < 0 && budgetCount > 0 && bad >= budgetCount {
			arm.BudgetExhaustMS = p.AtMS
		}
	}
	for _, p := range arm.Polls {
		if p.Alerting {
			arm.Alerts++
		}
	}
	return arm, nil
}

// mergedQuantile merges the per-node histograms of one metric family
// (by summing bucket counts) and inverts the merged distribution at q.
func mergedQuantile(reg *obs.Registry, nodes []int, metric func(int) string, q float64) float64 {
	var bounds []float64
	var counts []int64
	for _, node := range nodes {
		h := reg.Histogram(metric(node), obs.SojournBuckets)
		b, c := h.Buckets()
		if bounds == nil {
			bounds = b
			counts = make([]int64, len(c))
		}
		for i := range c {
			counts[i] += c[i]
		}
	}
	merged := obs.NewHistogram(bounds)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		// Re-observe a representative value per bucket: the midpoint of
		// (lower, upper], matching the linear-interpolation assumption.
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := lo * 2
		if i < len(bounds) {
			hi = bounds[i]
		}
		mid := (lo + hi) / 2
		for j := int64(0); j < c; j++ {
			merged.Observe(mid)
		}
	}
	return merged.Quantile(q)
}

// Render writes the decomposition tables and the alert timeline.
func (r *SojournAnatomyResult) Render(w io.Writer) error {
	if err := header(w, fmt.Sprintf(
		"Sojourn anatomy: journey decomposition + burn-rate early warning (n=%d, Pareto α=%g [%g,%g], hot %d@%.0f%%, %.0f units/s/node, SLO %s)",
		r.N, r.Demand.Alpha, r.Demand.Lo, r.Demand.Hi,
		r.HotN, r.HotFrac*100, r.ServiceRate, r.SLO)); err != nil {
		return err
	}
	for i := range r.Arms {
		a := &r.Arms[i]
		tb := trace.NewTable(
			fmt.Sprintf("%s arm (%s jobs/s): unit sojourn decomposition over %d jobs",
				a.Mode, a.Envelope, a.Completed),
			"component", "units", "mean ms", "share")
		for _, c := range a.Components {
			tb.AddRow(c.Name, c.Count, fmt.Sprintf("%.3f", c.MeanMS), fmt.Sprintf("%.1f%%", c.Share*100))
		}
		tb.AddRow("= unit sojourn", "", fmt.Sprintf("%.3f", a.UnitMeanMS),
			fmt.Sprintf("(decomposition off by %.2f%%)", a.ComponentVsUnitErr*100))
		if err := tb.WriteText(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w,
			"%s: unit p99 %.2fms — hot nodes %.2fms vs cold %.2fms; hot-node mean queue %.3fms; mean hops %.2f\n",
			a.Mode, a.UnitP99MS, a.HotP99MS, a.ColdP99MS, a.HotQueueMS, a.MeanHops); err != nil {
			return err
		}
		switch {
		case a.FirstAlertMS >= 0 && a.BudgetExhaustMS >= 0:
			if _, err := fmt.Fprintf(w,
				"%s: burn-rate alert at %.0fms with %.0f%% of the run's error budget spent; budget exhausted at %.0fms — %.0fms of warning\n",
				a.Mode, a.FirstAlertMS, a.BudgetAtAlert*100, a.BudgetExhaustMS, a.BudgetExhaustMS-a.FirstAlertMS); err != nil {
				return err
			}
		case a.FirstAlertMS >= 0:
			if _, err := fmt.Fprintf(w,
				"%s: burn-rate alert at %.0fms with %.0f%% of the run's error budget spent; budget never exhausted\n",
				a.Mode, a.FirstAlertMS, a.BudgetAtAlert*100); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s: monitor stayed healthy (%d polls, final bad fraction %.2f%%)\n",
				a.Mode, len(a.Polls), a.FinalBadFrac*100); err != nil {
				return err
			}
		}
	}
	steady, spike := r.armFor("steady"), r.armFor("spike")
	if steady == nil || spike == nil {
		return nil
	}
	_, err := fmt.Fprintf(w, "the spike's tail is queueing delay on the hot nodes (queue share %.0f%% vs %.0f%% steady);\nthe multi-window burn rate crosses its threshold while the overall budget is still\nmostly unspent — the alert leads the SLO breach instead of reporting it.\n",
		spike.Components[1].Share*100, steady.Components[1].Share*100)
	return err
}
