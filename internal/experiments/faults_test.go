package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFaultSweepQuick(t *testing.T) {
	res, err := FaultSweep(ScaleQuick, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("expected 12 rows (4 drop rates × 3 crash counts), got %d", len(res.Rows))
	}
	var faultFree *FaultRow
	for i := range res.Rows {
		row := &res.Rows[i]
		if !row.Conserved {
			t.Fatalf("drop=%.2f crashes=%d: packet conservation violated", row.DropP, row.CrashCount)
		}
		if row.AbortedFrac < 0 || row.AbortedFrac > 1 {
			t.Fatalf("drop=%.2f crashes=%d: abort fraction %v", row.DropP, row.CrashCount, row.AbortedFrac)
		}
		if row.DropP == 0 && row.CrashCount == 0 {
			faultFree = row
		}
		if row.DropP == 0 && row.CrashCount == 0 && (row.Dropped != 0 || row.Timeouts != 0) {
			t.Fatalf("fault-free cell recorded %d drops, %d timeouts", row.Dropped, row.Timeouts)
		}
		if row.DropP >= 0.2 && row.Timeouts == 0 {
			t.Fatalf("drop=%.2f crashes=%d: heavy loss never tripped an initiator timeout", row.DropP, row.CrashCount)
		}
	}
	if faultFree == nil {
		t.Fatal("grid is missing the fault-free cell")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fault sensitivity") || !strings.Contains(out, "conserved") {
		t.Fatalf("render output incomplete:\n%s", out)
	}
}
