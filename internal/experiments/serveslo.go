package experiments

import (
	"fmt"
	"io"
	"time"

	"lmbalance/internal/cluster"
	"lmbalance/internal/rng"
	"lmbalance/internal/serve"
	"lmbalance/internal/trace"
	"lmbalance/internal/workload"
)

// ServeSLOArm is one serving configuration's end-to-end measurement:
// the same open-loop workload driven over real TCP against one cluster
// arm, with client-observed sojourn quantiles.
type ServeSLOArm struct {
	Mode          string // "none", "balanced", "balanced+adaptive"
	Submitted     int64
	Completed     int64
	P50, P95, P99 float64 // sojourn seconds, exact quantiles
	Throughput    float64 // completed jobs per driving second
	Ops           int64   // completed balancing operations
	MeanGap       time.Duration
	Elapsed       time.Duration
}

// ServeSLOResult is the serving-path SLO experiment: clients submit
// jobs over the wire under a skewed diurnal workload with heavy-tailed
// demands, and the question is what the balancing protocol buys in
// tail sojourn time. Three arms on identical traffic: a no-balancing
// control (each node serves only what lands on it), the free-running
// balanced protocol, and the adaptively paced one — the last pair is
// the open-loop serving version of the paced-vs-free-running
// comparison from the pacing work.
type ServeSLOResult struct {
	N           int
	Envelope    string
	Demand      workload.BoundedPareto
	HotFrac     float64
	HotN        int
	ServiceRate float64 // units/s per node
	Horizon     time.Duration
	Arms        []ServeSLOArm
}

// ServeSLO runs the three serving arms at n=8 over TCP. Quick keeps
// the horizon short for CI; full lengthens it so the diurnal envelope
// cycles several times and the tail quantiles firm up.
func ServeSLO(scale Scale, seed uint64) (*ServeSLOResult, error) {
	const (
		n            = 8
		conP         = 1.0
		stepInterval = 200 * time.Microsecond
	)
	out := &ServeSLOResult{
		N:           n,
		Demand:      workload.BoundedPareto{Alpha: 1.5, Lo: 1, Hi: 100},
		HotFrac:     0.7,
		HotN:        n / 4,
		ServiceRate: conP / stepInterval.Seconds(),
		Horizon:     time.Second,
	}
	env, err := workload.ParseEnvelope("800x700ms,1300x300ms")
	if err != nil {
		return nil, err
	}
	out.Envelope = env.String()
	if scale == ScaleFull {
		out.Horizon = 4 * time.Second
	}
	arrivals, err := workload.ArrivalSpec{
		Env: env, Demand: out.Demand, Horizon: out.Horizon,
	}.Schedule(rng.New(seed))
	if err != nil {
		return nil, err
	}
	spec := serve.LoadSpec{HotFrac: out.HotFrac, HotN: out.HotN}

	arms := []struct {
		name      string
		noBalance bool
		pace      cluster.PaceMode
	}{
		{"none", true, cluster.PaceOff},
		{"balanced", false, cluster.PaceOff},
		{"balanced+adaptive", false, cluster.PaceAdaptive},
	}
	for _, arm := range arms {
		sc, err := serve.StartServeCluster(serve.ClusterSpec{
			N: n, Delta: 2, F: 1.2,
			ConP: conP, StepInterval: stepInterval,
			Seed: seed, NoBalance: arm.noBalance, Pace: arm.pace,
		})
		if err != nil {
			return nil, fmt.Errorf("serveslo %s: %w", arm.name, err)
		}
		res, err := serve.Drive(sc.Addrs(), arrivals, spec, seed+1, 30*time.Second)
		if err != nil {
			sc.DrainAndStop(time.Second)
			return nil, fmt.Errorf("serveslo %s: %w", arm.name, err)
		}
		cres, stats, err := sc.DrainAndStop(30 * time.Second)
		if err != nil {
			return nil, fmt.Errorf("serveslo %s: %w", arm.name, err)
		}
		if !cres.Conserved() {
			return nil, fmt.Errorf("serveslo %s: packet conservation violated", arm.name)
		}
		if !cres.JobsConserved() {
			return nil, fmt.Errorf("serveslo %s: job conservation violated (ingested %d, done %d, held %d)",
				arm.name, cres.Ingested(), cres.UnitsDone(), cres.RecordsHeld())
		}
		if stats.UnitsCompleted != stats.UnitsAccepted {
			return nil, fmt.Errorf("serveslo %s: %d units stranded",
				arm.name, stats.UnitsAccepted-stats.UnitsCompleted)
		}
		if res.Completed < res.Submitted {
			return nil, fmt.Errorf("serveslo %s: %d jobs never completed",
				arm.name, res.Submitted-res.Completed)
		}
		out.Arms = append(out.Arms, ServeSLOArm{
			Mode:      arm.name,
			Submitted: res.Submitted, Completed: res.Completed,
			P50: res.P(0.50), P95: res.P(0.95), P99: res.P(0.99),
			Throughput: res.Throughput(),
			Ops:        cres.Completed(),
			MeanGap:    cres.MeanPaceGap(),
			Elapsed:    res.Elapsed,
		})
	}
	return out, nil
}

// arm returns the named arm, nil if absent.
func (r *ServeSLOResult) arm(mode string) *ServeSLOArm {
	for i := range r.Arms {
		if r.Arms[i].Mode == mode {
			return &r.Arms[i]
		}
	}
	return nil
}

// Render writes the SLO table and the two verdicts: balancing vs the
// no-balancing control on tail sojourn, and free-running vs adaptively
// paced balancing under the open-loop serving workload.
func (r *ServeSLOResult) Render(w io.Writer) error {
	if err := header(w, fmt.Sprintf(
		"Serving SLO: client-observed sojourn over TCP (n=%d, %s jobs/s, Pareto α=%g [%g,%g], hot %d@%.0f%%, %.0f units/s/node, horizon %v)",
		r.N, r.Envelope, r.Demand.Alpha, r.Demand.Lo, r.Demand.Hi,
		r.HotN, r.HotFrac*100, r.ServiceRate, r.Horizon)); err != nil {
		return err
	}
	tb := trace.NewTable("sojourn-time distribution by arm",
		"mode", "submitted", "completed", "p50 ms", "p95 ms", "p99 ms", "jobs/s", "ops", "mean gap")
	for _, a := range r.Arms {
		tb.AddRow(a.Mode, a.Submitted, a.Completed,
			fmt.Sprintf("%.2f", a.P50*1e3), fmt.Sprintf("%.2f", a.P95*1e3),
			fmt.Sprintf("%.2f", a.P99*1e3), fmt.Sprintf("%.0f", a.Throughput),
			a.Ops, a.MeanGap.Round(time.Microsecond).String())
	}
	if err := tb.WriteText(w); err != nil {
		return err
	}
	none, bal, adapt := r.arm("none"), r.arm("balanced"), r.arm("balanced+adaptive")
	if none == nil || bal == nil || adapt == nil {
		return nil
	}
	best := bal
	if adapt.P99 < best.P99 {
		best = adapt
	}
	if _, err := fmt.Fprintf(w,
		"balancing vs none: p99 %.2fms vs %.2fms (%.1f× better), p50 %.2fms vs %.2fms\n",
		best.P99*1e3, none.P99*1e3, ratio(none.P99, best.P99),
		best.P50*1e3, none.P50*1e3); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"pacing under open-loop serving: free-running p99 %.2fms with %d ops, adaptive %.2fms with %d ops (gap %v)\n",
		bal.P99*1e3, bal.Ops, adapt.P99*1e3, adapt.Ops,
		adapt.MeanGap.Round(time.Microsecond)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "the hot nodes run above local capacity while the cluster has headroom; without\nmigration their queues grow for the whole rush and the tail is pure queueing\ndelay, with it the backlog drains sideways and the p99 tracks service time.\n")
	return err
}
