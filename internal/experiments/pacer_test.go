package experiments

import (
	"bytes"
	"strings"
	"testing"

	"lmbalance/internal/cluster"
)

func TestPacerSweepQuickShape(t *testing.T) {
	res, err := PacerSweep(ScaleQuick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(res.Ns) * 2 * len(pacerModes); len(res.Cells) != want {
		t.Fatalf("expected %d cells, got %d", want, len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Rate < 0 || c.Rate > 1 {
			t.Fatalf("%s n=%d %s: completion rate %v outside [0,1]",
				c.Transport, c.N, c.Mode, c.Rate)
		}
		if c.Completed > c.Initiated {
			t.Fatalf("%s n=%d %s: completed %d > initiated %d",
				c.Transport, c.N, c.Mode, c.Completed, c.Initiated)
		}
		switch c.Mode {
		case cluster.PaceOff:
			if c.Episodes != 0 || c.Backoffs != 0 || c.MeanGap != 0 {
				t.Fatalf("%s n=%d off: pacing state leaked (%d episodes, %d backoffs, gap %v)",
					c.Transport, c.N, c.Episodes, c.Backoffs, c.MeanGap)
			}
		case cluster.PaceFixed:
			if c.Backoffs != 0 || c.Recovers != 0 {
				t.Fatalf("%s n=%d fixed: adaptive transitions counted (%d/%d)",
					c.Transport, c.N, c.Backoffs, c.Recovers)
			}
			if c.MeanGap != res.FixedGap {
				t.Fatalf("%s n=%d fixed: gap %v, want the %v floor",
					c.Transport, c.N, c.MeanGap, res.FixedGap)
			}
		}
	}
	// The headline comparison must exist, and adaptive pacing must beat
	// the free-running completion rate where the pathology lives.
	free := res.cell("tcp", 16, cluster.PaceOff)
	adapt := res.cell("tcp", 16, cluster.PaceAdaptive)
	if free == nil || adapt == nil {
		t.Fatal("n=16 tcp cells missing")
	}
	if adapt.Rate <= free.Rate {
		t.Fatalf("adaptive pacing did not improve the tcp completion rate: %v vs %v",
			adapt.Rate, free.Rate)
	}
	if adapt.Backoffs == 0 {
		t.Fatal("adaptive controller never backed off on the colliding tcp cluster")
	}

	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Initiation pacing sweep", "adaptive", "n=16 completion rate",
		"traffic per completed op",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, buf.String())
		}
	}
}
