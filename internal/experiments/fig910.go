package experiments

import (
	"fmt"
	"io"

	"lmbalance/internal/sim"
	"lmbalance/internal/trace"
)

// Fig910SnapshotSteps are the global time steps at which Figures 9 and 10
// show the per-processor load distribution.
var Fig910SnapshotSteps = []int{50, 200, 400}

// Fig910Result holds the distribution snapshots for the (δ, f) panels of
// Figure 9 (δ=1) or Figure 10 (δ=4).
type Fig910Result struct {
	Figure string
	Panels []Fig78Panel
	N      int
	Runs   int
}

// Fig910 reproduces Figure 9 (δ=1) or Figure 10 (δ=4): the expected,
// minimal and maximal load of each of the 64 processors at time steps 50,
// 200 and 400, over the runs dictated by scale.
func Fig910(configs []Fig78Config, figure string, scale Scale, seed uint64) (*Fig910Result, error) {
	out := &Fig910Result{Figure: figure, N: PaperN, Runs: scale.runs()}
	for i, c := range configs {
		cfg := sim.LMConfig(PaperN, PaperSteps, out.Runs, PaperParams(c.F, c.Delta), PaperWorkload(), seed+uint64(i))
		// Snapshot steps are 1-based in the paper's axis; record at the
		// end of steps 50/200/400 (0-based indices 49/199/399).
		cfg.SnapshotAt = make([]int, len(Fig910SnapshotSteps))
		for k, s := range Fig910SnapshotSteps {
			cfg.SnapshotAt[k] = s - 1
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig%s δ=%d f=%g: %w", figure, c.Delta, c.F, err)
		}
		out.Panels = append(out.Panels, Fig78Panel{Config: c, Result: res})
	}
	return out, nil
}

// Render writes, per panel, a per-processor table (expected/min/max load at
// each snapshot step) plus a summary envelope row.
func (r *Fig910Result) Render(w io.Writer) error {
	if err := header(w, fmt.Sprintf("Figure %s: per-processor load distribution, %d runs", r.Figure, r.Runs)); err != nil {
		return err
	}
	for _, p := range r.Panels {
		headers := []string{"proc"}
		for _, s := range Fig910SnapshotSteps {
			headers = append(headers,
				fmt.Sprintf("E@%d", s), fmt.Sprintf("min@%d", s), fmt.Sprintf("max@%d", s))
		}
		tb := trace.NewTable(fmt.Sprintf("δ=%d f=%g C=4", p.Config.Delta, p.Config.F), headers...)
		for proc := 0; proc < r.N; proc++ {
			row := make([]any, 0, len(headers))
			row = append(row, proc)
			for _, s := range Fig910SnapshotSteps {
				acc := p.Result.Snapshots[s-1][proc]
				row = append(row, acc.Mean(), acc.Min(), acc.Max())
			}
			tb.AddRow(row...)
		}
		if err := tb.WriteText(w); err != nil {
			return err
		}

		// Summary: the spread of expected loads across processors — the
		// visual "height of the band" in the paper's plots.
		sum := trace.NewTable("distribution envelope (across processors)",
			"step", "E(load) min..max", "abs min", "abs max")
		for _, s := range Fig910SnapshotSteps {
			accs := p.Result.Snapshots[s-1]
			loE, hiE := accs[0].Mean(), accs[0].Mean()
			lo, hi := accs[0].Min(), accs[0].Max()
			for _, a := range accs[1:] {
				if m := a.Mean(); m < loE {
					loE = m
				} else if m > hiE {
					hiE = m
				}
				if a.Min() < lo {
					lo = a.Min()
				}
				if a.Max() > hi {
					hi = a.Max()
				}
			}
			sum.AddRow(s, fmt.Sprintf("%.2f..%.2f", loE, hiE), lo, hi)
		}
		if err := sum.WriteText(w); err != nil {
			return err
		}
		// Heat rows: per-processor expected load, one row per snapshot,
		// scaled over the whole panel so darkening rows show growth and
		// uniform shading shows balance.
		var lo, hi float64
		first := true
		for _, s := range Fig910SnapshotSteps {
			for _, a := range p.Result.Snapshots[s-1] {
				m := a.Mean()
				if first {
					lo, hi, first = m, m, false
					continue
				}
				if m < lo {
					lo = m
				}
				if m > hi {
					hi = m
				}
			}
		}
		for _, s := range Fig910SnapshotSteps {
			vals := make([]float64, r.N)
			for i, a := range p.Result.Snapshots[s-1] {
				vals[i] = a.Mean()
			}
			if _, err := fmt.Fprintf(w, "t=%-4d %s\n", s, trace.HeatRow(vals, lo, hi)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// EnvelopeWidth returns max−min of per-processor expected loads at
// snapshot step s (1-based paper axis) for panel i — the scalar the
// δ-impact claim is judged by.
func (r *Fig910Result) EnvelopeWidth(i int, s int) float64 {
	accs := r.Panels[i].Result.Snapshots[s-1]
	lo, hi := accs[0].Mean(), accs[0].Mean()
	for _, a := range accs[1:] {
		m := a.Mean()
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	return hi - lo
}
