package experiments

import (
	"strings"
	"testing"
)

// TestPostMortemQuick runs the whole post-mortem pipeline at quick
// scale: record→replay fidelity, snapshot-on-alert incident capture
// with an offline degraded-transition verdict, and the tamper check.
// Every claim is asserted inside PostMortem itself; the test checks the
// run succeeds and the rendered artifact carries the verdicts.
func TestPostMortemQuick(t *testing.T) {
	res, err := PostMortem(ScaleQuick, 1993)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Baseline.Identical {
		t.Fatal("baseline replay not bit-identical")
	}
	if res.Baseline.Events == 0 || res.Baseline.Timelines == 0 || res.Baseline.VDPoints == 0 {
		t.Fatalf("baseline under-populated: %+v", res.Baseline)
	}
	inc := &res.Incident
	if inc.Snapshots != inc.N {
		t.Fatalf("sealed %d snapshots for %d nodes", inc.Snapshots, inc.N)
	}
	if inc.AlertAtMS < 0 || inc.Violations != 0 || inc.OverSLO == 0 {
		t.Fatalf("incident verdict malformed: %+v", inc)
	}
	if inc.DegradedSojournMS*1e6 <= inc.SLO.Threshold*1e9 {
		t.Fatalf("degraded transition %.1fms does not exceed the %.0fms SLO",
			inc.DegradedSojournMS, inc.SLO.Threshold*1e3)
	}
	if res.Tamper.Rule != "imbalance_violation" {
		t.Fatalf("tamper flagged %q", res.Tamper.Rule)
	}

	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"bit for bit", "sealed", "first degraded transition", "imbalance_violation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered artifact missing %q", want)
		}
	}
}
