package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestNetCostQuick(t *testing.T) {
	res, err := NetCost(ScaleQuick, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("expected 6 rows, got %d", len(res.Rows))
	}
	byName := map[string]NetCostRow{}
	for _, row := range res.Rows {
		byName[row.Name] = row
		if row.MsgsPerOp <= 0 {
			t.Fatalf("%s: no messages per op", row.Name)
		}
		if row.AbortedFrac < 0 || row.AbortedFrac >= 1 {
			t.Fatalf("%s: abort fraction %v", row.Name, row.AbortedFrac)
		}
	}
	// Message cost grows with δ: each op needs 2δ protocol messages plus
	// transfers.
	if byName["global δ=4"].MsgsPerOp <= byName["global δ=1"].MsgsPerOp {
		t.Fatalf("msgs/op did not grow with δ: %v vs %v",
			byName["global δ=1"].MsgsPerOp, byName["global δ=4"].MsgsPerOp)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "communication cost") {
		t.Fatal("render missing title")
	}
}
