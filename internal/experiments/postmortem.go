package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"lmbalance/internal/cluster"
	"lmbalance/internal/flight"
	"lmbalance/internal/obs"
	"lmbalance/internal/rng"
	"lmbalance/internal/serve"
	"lmbalance/internal/trace"
	"lmbalance/internal/wire"
	"lmbalance/internal/workload"
)

// PostMortem exercises the black-box flight recorder end to end, the
// way an operator would meet it:
//
//  1. Fidelity — record a full loopback cluster run through transport
//     taps and decision hooks, replay the segments offline, and require
//     the shadow audit to reproduce the live accounting bit for bit
//     (per-node protocol counts, final loads, conservation, per-op
//     timelines, the VD trajectory) with zero legality violations.
//  2. Incident — run a serving cluster under the health monitor with
//     recorders attached, inject an overload spike, and let the
//     monitor's snapshot-on-alert hook seal an incident artifact the
//     moment the burn-rate alert fires. Replaying the snapshot alone
//     (no live state, no debug endpoints) must pinpoint the first
//     degraded transition: the first completion whose recorded sojourn
//     crossed the SLO threshold, with its wall offset, node and job.
//  3. Tamper — rewrite one node's history so a transfer moves more
//     load than the freeze agreed to; the audit must flag the exact
//     record with an imbalance verdict. A recording that can be
//     silently doctored is not evidence.
type PostMortemResult struct {
	Baseline PMBaseline
	Incident PMIncident
	Tamper   PMTamper
}

// PMBaseline is the record→replay fidelity check on a loopback run.
type PMBaseline struct {
	N, Steps  int
	Events    int   // decoded flight records across all node streams
	Bytes     int64 // on-disk recording size
	Initiated int64 // live == replay (checked)
	Resolved  int64
	Aborted   int64
	TotalLoad int64
	Conserved bool
	Timelines int64 // per-op timelines holding a resolve == live completed ops
	VDPoints  int
	Identical bool // every compared quantity matched bit for bit
}

// PMIncident is the snapshot-on-alert capture and its offline verdict.
type PMIncident struct {
	N         int
	SLO       obs.SLO
	Envelope  string
	Submitted int64
	Completed int64

	AlertAtMS     float64 // burn-rate alert, ms after driving started
	Snapshots     int     // per-node snapshot directories sealed by the hook
	SnapshotBytes int64
	Events        int // decoded records in the incident capture
	Violations    int // protocol legality violations in the capture

	Completions       int     // completions replayed from the capture
	OverSLO           int     // of those, over the SLO threshold
	ReplayP95MS       float64 // p95 sojourn re-derived offline
	DegradedAtMS      float64 // first over-threshold completion, ms into the capture
	DegradedNode      int
	DegradedJob       uint64
	DegradedSojournMS float64
}

// PMTamper is the audit's verdict on a doctored history.
type PMTamper struct {
	Node   int
	Index  int // position of the flagged record in the node's stream
	Rule   string
	Detail string
}

// PostMortem runs the three arms. Every claim the rendered artifact
// makes is asserted here; a regression fails the run, not just the
// prose.
func PostMortem(scale Scale, seed uint64) (*PostMortemResult, error) {
	out := &PostMortemResult{}
	root, err := os.MkdirTemp("", "postmortem-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	baseDir := filepath.Join(root, "baseline")
	if err := pmBaseline(scale, seed, baseDir, &out.Baseline); err != nil {
		return nil, fmt.Errorf("postmortem baseline: %w", err)
	}
	if err := pmIncident(scale, seed, filepath.Join(root, "incident"), &out.Incident); err != nil {
		return nil, fmt.Errorf("postmortem incident: %w", err)
	}
	// The tamper arm doctors the baseline recording, proving the same
	// segments that just replayed cleanly cannot be edited undetected.
	if err := pmTamper(baseDir, filepath.Join(root, "tampered"), &out.Tamper); err != nil {
		return nil, fmt.Errorf("postmortem tamper: %w", err)
	}
	return out, nil
}

// pmBaseline records a loopback cluster run and replays it, requiring
// bit-identity with the live result. The recording is left in dir for
// the tamper arm.
func pmBaseline(scale Scale, seed uint64, dir string, b *PMBaseline) error {
	n, steps := 4, 400
	if scale == ScaleFull {
		n, steps = 8, 4000
	}
	lnet := wire.NewLoopback(n)
	recs := make([]*flight.Recorder, n)
	transports := make([]wire.Transport, n)
	for i := 0; i < n; i++ {
		rec, err := flight.Open(flight.Options{Dir: filepath.Join(dir, fmt.Sprintf("node-%d", i)), Node: i})
		if err != nil {
			return err
		}
		recs[i] = rec
		transports[i] = rec.Tap(lnet.Transport(i))
	}
	res, err := cluster.RunCluster(cluster.ClusterConfig{
		N: n, Delta: 2, F: 2, Steps: steps, Seed: seed,
		Flight: recs,
	}, transports)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if err := rec.Close(); err != nil {
			return err
		}
		if rec.Dropped() != 0 {
			return fmt.Errorf("recorder dropped %d records; identity needs the full stream", rec.Dropped())
		}
	}

	recording, err := flight.LoadTree(dir)
	if err != nil {
		return err
	}
	audit := flight.Audit(recording)
	if audit.First != nil {
		return fmt.Errorf("clean run flagged: %v", *audit.First)
	}
	if audit.FinalsSeen != n {
		return fmt.Errorf("finals from %d of %d nodes", audit.FinalsSeen, n)
	}
	for i, na := range audit.Nodes {
		live := res.Nodes[i]
		if na.Initiated != live.Initiated || na.Resolved != live.Completed ||
			na.Aborted != live.Aborted || na.FreezeExpired != live.FreezeExpired {
			return fmt.Errorf("node %d protocol counts diverge: replay init=%d res=%d abort=%d vs live %d/%d/%d",
				i, na.Initiated, na.Resolved, na.Aborted, live.Initiated, live.Completed, live.Aborted)
		}
		if na.Final == nil || na.Final.Load != live.FinalLoad {
			return fmt.Errorf("node %d final load: replay %+v live %d", i, na.Final, live.FinalLoad)
		}
		b.Events += na.Events
		b.Initiated += na.Initiated
		b.Resolved += na.Resolved
		b.Aborted += na.Aborted
	}
	if audit.TotalLoad != res.TotalLoad() || audit.Conserved() != res.Conserved() {
		return fmt.Errorf("conservation diverges: replay %d/%v live %d/%v",
			audit.TotalLoad, audit.Conserved(), res.TotalLoad(), res.Conserved())
	}
	resolved := int64(0)
	for _, op := range recording.Ops() {
		for _, ev := range recording.Timeline(op) {
			if ev.Dir == flight.DirLocal && ev.Kind == flight.LocalResolve {
				resolved++
				break
			}
		}
	}
	if resolved != res.Completed() {
		return fmt.Errorf("timelines with a resolve: %d, live completed ops: %d", resolved, res.Completed())
	}
	if len(audit.VD) == 0 {
		return fmt.Errorf("no VD trajectory from a full recording")
	}
	b.N, b.Steps = n, steps
	b.TotalLoad, b.Conserved = audit.TotalLoad, audit.Conserved()
	b.Timelines, b.VDPoints = resolved, len(audit.VD)
	b.Bytes = treeBytes(dir)
	b.Identical = true
	return nil
}

// pmIncident drives an overload spike into a monitored serving cluster
// with recorders attached and audits the snapshot the alert sealed.
func pmIncident(scale Scale, seed uint64, dir string, inc *PMIncident) error {
	const (
		conP         = 1.0
		stepInterval = 200 * time.Microsecond
	)
	// The spike is the injected fault: far beyond cluster capacity, so
	// it trips the burn-rate alert on any hardware. No tight steady
	// control runs here (that is anatomy's job) — the threshold only
	// needs to sit between healthy sojourns and the spike's queueing.
	n, sloText := 4, "p95 < 250ms over 120ms/360ms burn 2"
	env := "75x300ms,12000x400ms,150x500ms"
	pollPeriod, warmup := 15*time.Millisecond, 300*time.Millisecond
	if scale == ScaleFull {
		n, sloText = 8, "p95 < 100ms over 120ms/360ms burn 2"
		env = "300x500ms,12000x600ms,300x500ms"
		pollPeriod, warmup = 25*time.Millisecond, 500*time.Millisecond
	}
	slo, err := obs.ParseSLO(sloText)
	if err != nil {
		return err
	}
	envelope, err := workload.ParseEnvelope(env)
	if err != nil {
		return err
	}
	arrivals, err := workload.ArrivalSpec{
		Env: envelope, Demand: workload.BoundedPareto{Alpha: 1.5, Lo: 1, Hi: 20},
		Horizon: envelope.Period(),
	}.Schedule(rng.New(seed))
	if err != nil {
		return err
	}

	recs := make([]*flight.Recorder, n)
	for i := range recs {
		rec, err := flight.Open(flight.Options{Dir: filepath.Join(dir, fmt.Sprintf("node-%d", i)), Node: i})
		if err != nil {
			return err
		}
		recs[i] = rec
	}
	reg := obs.NewRegistry()
	sc, err := serve.StartServeCluster(serve.ClusterSpec{
		N: n, Delta: 2, F: 1.2,
		ConP: conP, StepInterval: stepInterval,
		Seed: seed, Obs: reg, Flight: recs,
	})
	if err != nil {
		return err
	}
	dbg, err := obs.ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		sc.DrainAndStop(time.Second)
		return err
	}
	defer dbg.Close()

	// Snapshot-on-alert: the first clear→firing transition seals every
	// node's ring into an incident artifact, exactly as cmd/lbnode does
	// in production. Only the first alert snapshots — an incident is one
	// artifact, not one per flap.
	start := time.Now()
	var (
		snapOnce  sync.Once
		snapMu    sync.Mutex
		snapDirs  []string
		alertAtMS float64 = -1
	)
	mon := obs.NewMonitor(obs.MonitorConfig{
		URLs: []string{dbg.URL()}, SLO: slo,
		Period: pollPeriod, Tracer: reg.Tracer(), Obs: reg,
		OnAlert: func(obs.HealthDoc) {
			snapOnce.Do(func() {
				snapMu.Lock()
				defer snapMu.Unlock()
				alertAtMS = time.Since(start).Seconds() * 1e3
				for _, rec := range recs {
					if d, err := rec.Snapshot("slo_alert"); err == nil {
						snapDirs = append(snapDirs, d)
					}
				}
			})
		},
	})
	// Baseline the monitor after the warmup transient, then poll on the
	// wall clock while the drive runs open loop.
	monStop, monUp := make(chan struct{}), make(chan struct{})
	go func() {
		defer close(monUp)
		select {
		case <-monStop:
			return
		case <-time.After(warmup):
		}
		mon.Poll()
		mon.Start()
	}()

	res, err := serve.Drive(sc.Addrs(), arrivals, serve.LoadSpec{HotFrac: 0.7, HotN: n / 4}, seed+1, 30*time.Second)
	close(monStop)
	<-monUp
	mon.Stop()
	if err != nil {
		sc.DrainAndStop(time.Second)
		return err
	}
	if _, _, err := sc.DrainAndStop(30 * time.Second); err != nil {
		return err
	}
	for _, rec := range recs {
		if err := rec.Close(); err != nil {
			return err
		}
	}

	snapMu.Lock()
	dirs := append([]string(nil), snapDirs...)
	at := alertAtMS
	snapMu.Unlock()
	if len(dirs) != n {
		return fmt.Errorf("alert sealed %d of %d node snapshots (alert at %.0fms)", len(dirs), n, at)
	}

	// The post-mortem proper: load ONLY the sealed snapshots — the live
	// cluster, its registry and its debug endpoints are gone.
	capture := &flight.Recording{}
	for _, d := range dirs {
		nr, err := flight.LoadDir(d)
		if err != nil {
			return fmt.Errorf("snapshot %s: %w", d, err)
		}
		capture.Nodes = append(capture.Nodes, nr)
		inc.Events += len(nr.Events)
		inc.SnapshotBytes += treeBytes(d)
	}
	audit := flight.Audit(capture)
	if audit.First != nil {
		return fmt.Errorf("overload capture shows an illegal protocol step: %v", *audit.First)
	}
	thresholdNS := int64(slo.Threshold * 1e9)
	for _, s := range audit.SojournNS {
		if s > thresholdNS {
			inc.OverSLO++
		}
	}
	if inc.OverSLO == 0 {
		return fmt.Errorf("capture holds no over-SLO completion (%d completions)", len(audit.SojournNS))
	}
	// Pinpoint the first degraded transition in the merged stream.
	merged := capture.Merge()
	firstWall := int64(0)
	if len(merged) > 0 {
		firstWall = merged[0].WallNS
	}
	found := false
	for _, ev := range merged {
		if ev.Dir == flight.DirLocal && ev.Kind == flight.LocalComplete && ev.Arg(2) > thresholdNS {
			inc.DegradedAtMS = float64(ev.WallNS-firstWall) / 1e6
			inc.DegradedNode = ev.Node
			inc.DegradedJob = uint64(ev.Arg(0))
			inc.DegradedSojournMS = float64(ev.Arg(2)) / 1e6
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("over-SLO sojourns exist but no degraded completion event found")
	}
	inc.N, inc.SLO, inc.Envelope = n, slo, envelope.String()
	inc.Submitted, inc.Completed = res.Submitted, res.Completed
	inc.AlertAtMS, inc.Snapshots = at, len(dirs)
	inc.Violations = len(audit.Violations)
	inc.Completions = len(audit.SojournNS)
	inc.ReplayP95MS = float64(audit.SojournQuantile(0.95)) / 1e6
	return nil
}

// pmTamper doctors the baseline recording — one node's transfers each
// move two extra units — and requires the audit to name the exact
// record that broke the freeze agreement.
func pmTamper(srcRoot, dst string, t *PMTamper) error {
	entries, err := os.ReadDir(srcRoot)
	if err != nil {
		return err
	}
	victim := ""
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		nr, err := flight.LoadDir(filepath.Join(srcRoot, e.Name()))
		if err != nil {
			return err
		}
		for _, ev := range nr.Events {
			if ev.Dir == flight.DirSend && ev.Msg.Kind == wire.Transfer {
				victim = e.Name()
				break
			}
		}
		if victim != "" {
			break
		}
	}
	if victim == "" {
		return fmt.Errorf("baseline run completed no transfers to tamper with")
	}
	err = flight.Rewrite(filepath.Join(srcRoot, victim), dst, func(ev flight.Event) flight.Event {
		if ev.Dir == flight.DirSend && ev.Msg.Kind == wire.Transfer {
			ev.Msg.Amount += 2 // two units stolen in transit
		}
		return ev
	})
	if err != nil {
		return err
	}
	nr, err := flight.LoadDir(dst)
	if err != nil {
		return err
	}
	verdict := flight.Audit(&flight.Recording{Nodes: []*flight.NodeRecording{nr}})
	if verdict.First == nil {
		return fmt.Errorf("tampered history passed the audit")
	}
	if verdict.First.Rule != "imbalance_violation" {
		return fmt.Errorf("tampered history flagged %q, want imbalance_violation", verdict.First.Rule)
	}
	t.Node, t.Index = verdict.First.Node, verdict.First.Index
	t.Rule, t.Detail = verdict.First.Rule, verdict.First.Detail
	return nil
}

// treeBytes sums regular-file sizes under root.
func treeBytes(root string) int64 {
	var total int64
	filepath.Walk(root, func(_ string, info os.FileInfo, err error) error {
		if err == nil && info.Mode().IsRegular() {
			total += info.Size()
		}
		return nil
	})
	return total
}

func (r *PostMortemResult) Render(w io.Writer) error {
	if err := header(w, "Black-box post-mortem: record, snapshot on alert, replay to a verdict"); err != nil {
		return err
	}
	b := &r.Baseline
	tb := trace.NewTable(
		fmt.Sprintf("fidelity: n=%d loopback run, %d steps, recorded through transport taps (%d events, %d KiB)",
			b.N, b.Steps, b.Events, b.Bytes/1024),
		"quantity", "live", "replay")
	same := func(v int64) [2]string { s := fmt.Sprintf("%d", v); return [2]string{s, s} }
	for _, row := range []struct {
		name string
		v    [2]string
	}{
		{"operations initiated", same(b.Initiated)},
		{"operations resolved", same(b.Resolved)},
		{"operations aborted", same(b.Aborted)},
		{"total load", same(b.TotalLoad)},
		{"conserved", [2]string{fmt.Sprintf("%v", b.Conserved), fmt.Sprintf("%v", b.Conserved)}},
	} {
		tb.AddRow(row.name, row.v[0], row.v[1])
	}
	if err := tb.WriteText(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"offline replay reproduced the live audit bit for bit: %d per-op timelines\n(= every resolved operation), %d-point VD trajectory, zero legality violations.\n",
		b.Timelines, b.VDPoints); err != nil {
		return err
	}

	inc := &r.Incident
	if err := header(w, fmt.Sprintf(
		"incident: %s spike into n=%d serving cluster, SLO %s", inc.Envelope, inc.N, inc.SLO)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"burn-rate alert fired %.0fms into the drive; the on-alert hook sealed %d node\nsnapshots — %d KiB, %d records — while the cluster kept serving (%d of %d\ndriven jobs eventually completed).\n\n",
		inc.AlertAtMS, inc.Snapshots, inc.SnapshotBytes/1024, inc.Events,
		inc.Completed, inc.Submitted); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"replaying the snapshots alone (live cluster gone): %d legality violations —\nthe protocol stayed correct under overload; the incident is pure queueing.\n%d of %d replayed completions exceeded the %.0fms SLO (offline p95 %.1fms).\nfirst degraded transition: job %d on node %d, sojourn %.1fms, %.0fms into the capture.\n",
		inc.Violations, inc.OverSLO, inc.Completions, inc.SLO.Threshold*1e3, inc.ReplayP95MS,
		inc.DegradedJob, inc.DegradedNode, inc.DegradedSojournMS, inc.DegradedAtMS); err != nil {
		return err
	}

	t := &r.Tamper
	if err := header(w, "tamper: doctored history (every transfer +2 units)"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"audit verdict: node %d event %d flagged %s (%s) —\nthe recording cannot be edited without the shadow machine noticing.\n",
		t.Node, t.Index, t.Rule, t.Detail)
	return err
}
