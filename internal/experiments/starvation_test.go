package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestStarvationQuick(t *testing.T) {
	res, err := Starvation(ScaleQuick, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(res.Rows))
	}
	byName := map[string]StarvationRow{}
	for _, row := range res.Rows {
		byName[row.Name] = row
		if row.ZeroFraction < 0 || row.ZeroFraction > 1 {
			t.Fatalf("%s: zero fraction %v out of range", row.Name, row.ZeroFraction)
		}
		if row.WorstProcessor < row.ZeroFraction-1e-9 {
			t.Fatalf("%s: worst processor %v below average %v", row.Name, row.WorstProcessor, row.ZeroFraction)
		}
	}
	lm := byName["LM(f=1.1,δ=1)"]
	nob := byName["nobalance"]
	// Without balancing, the 28 cold processors starve (~constantly);
	// with LM they must starve far less.
	if nob.ZeroFraction < 0.4 {
		t.Fatalf("no-balance starvation %v suspiciously low", nob.ZeroFraction)
	}
	if lm.ZeroFraction > nob.ZeroFraction/3 {
		t.Fatalf("LM starvation %v not clearly below no-balance %v", lm.ZeroFraction, nob.ZeroFraction)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "starvation") {
		t.Fatal("render missing title")
	}
}
