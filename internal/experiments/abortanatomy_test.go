package experiments

import (
	"bytes"
	"strings"
	"testing"

	"lmbalance/internal/cluster"
)

func TestAbortAnatomyQuickShape(t *testing.T) {
	res, err := AbortAnatomy(ScaleQuick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("expected 2 rows (inproc, tcp), got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Initiated == 0 {
			t.Fatalf("%s: no protocol ever initiated", row.Transport)
		}
		if row.AbortFrac < 0 || row.AbortFrac > 1 {
			t.Fatalf("%s: abort fraction %v outside [0,1]", row.Transport, row.AbortFrac)
		}
		// The per-reason decomposition must account for every abort.
		var total int64
		for _, c := range row.Aborts {
			total += c
		}
		if aborted := row.Initiated - row.Completed; total != aborted {
			t.Fatalf("%s: per-reason aborts %d != initiated-completed %d",
				row.Transport, total, aborted)
		}
		if total > 0 && row.Dominant == "" {
			t.Fatalf("%s: aborts happened but no dominant reason named", row.Transport)
		}
		if row.CollectP95 < row.CollectP50 {
			t.Fatalf("%s: collect p95 %v below p50 %v", row.Transport, row.CollectP95, row.CollectP50)
		}
	}
	// On loopback every abort is a busy partner — the only cause that
	// exists without a real network.
	in := res.Rows[0]
	if in.Transport != "inproc" {
		t.Fatalf("row order changed: %v", in.Transport)
	}
	if in.Aborts[cluster.AbortTimeout] != 0 || in.Aborts[cluster.AbortLinkDown] != 0 {
		t.Fatalf("inproc saw network-style aborts: %v", in.Aborts)
	}

	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Abort anatomy", "peer_frozen", "dominant abort cause at n=16 over tcp",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, buf.String())
		}
	}
}
