package experiments

import (
	"fmt"
	"io"

	"lmbalance/internal/core"
	"lmbalance/internal/sim"
	"lmbalance/internal/trace"
)

// Table1Cs are the borrow-capacity values of the paper's Table 1.
var Table1Cs = []int{4, 8, 16, 32}

// Table1Result holds the borrowing statistics for each C, averaged per
// run and per processor — the paper's Table 1 magnitudes (e.g. "total
// borrow 107.777" at C=4) are per-processor averages over the 100 runs.
type Table1Result struct {
	Cs      []int
	Metrics []core.ScaledMetrics // parallel to Cs; per processor per run
	Runs    int
}

// Table1 reproduces the paper's Table 1: the borrowing statistics of the
// §7 benchmark workload (64 processors, 500 steps, f=1.1, δ=1) for
// C ∈ {4, 8, 16, 32}.
func Table1(scale Scale, seed uint64) (*Table1Result, error) {
	out := &Table1Result{Cs: Table1Cs, Runs: scale.runs()}
	for i, c := range Table1Cs {
		params := core.Params{F: 1.1, Delta: 1, C: c}
		cfg := sim.LMConfig(PaperN, PaperSteps, out.Runs, params, PaperWorkload(), seed+uint64(i))
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("table1 C=%d: %w", c, err)
		}
		out.Metrics = append(out.Metrics, res.CoreMetrics.Scale(out.Runs*PaperN))
	}
	return out, nil
}

// Render writes the table in the paper's orientation: one column per C,
// one row per counter.
func (r *Table1Result) Render(w io.Writer) error {
	if err := header(w, fmt.Sprintf("Table 1: borrowing statistics (f=1.1, δ=1, %d runs, per-processor per-run averages)", r.Runs)); err != nil {
		return err
	}
	headers := []string{"counter"}
	for _, c := range r.Cs {
		headers = append(headers, fmt.Sprintf("C=%d", c))
	}
	tb := trace.NewTable("", headers...)
	addRow := func(name string, pick func(core.ScaledMetrics) float64) {
		row := make([]any, 0, len(headers))
		row = append(row, name)
		for _, m := range r.Metrics {
			row = append(row, pick(m))
		}
		tb.AddRow(row...)
	}
	addRow("total borrow", func(m core.ScaledMetrics) float64 { return m.TotalBorrow })
	addRow("remote borrow", func(m core.ScaledMetrics) float64 { return m.RemoteBorrow })
	addRow("borrow fail", func(m core.ScaledMetrics) float64 { return m.BorrowFail })
	addRow("decrease sim", func(m core.ScaledMetrics) float64 { return m.DecreaseSim })
	addRow("(balance ops)", func(m core.ScaledMetrics) float64 { return m.BalanceOps })
	addRow("(migrations)", func(m core.ScaledMetrics) float64 { return m.Migrations })
	return tb.WriteText(w)
}
