package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The experiment harnesses are integration tests of the whole stack; they
// run at ScaleQuick here and assert the paper's qualitative claims.

func TestFig6QuickShape(t *testing.T) {
	res, err := Fig6(ScaleQuick, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Locate combo indices.
	idx := func(delta int, f float64) int {
		for i, c := range res.Combos {
			if c.Delta == delta && c.F == f {
				return i
			}
		}
		t.Fatalf("combo δ=%d f=%g missing", delta, f)
		return -1
	}
	lastN := len(res.Ns) - 1
	// Paper claims: VD small in general; larger δ → lower VD; larger f →
	// higher VD.
	d1f11 := res.Final(idx(1, 1.1), lastN)
	d4f11 := res.Final(idx(4, 1.1), lastN)
	d1f12 := res.Final(idx(1, 1.2), lastN)
	if d1f11 <= 0 || d1f11 > 1 {
		t.Fatalf("VD(δ=1,f=1.1) = %v not small-positive", d1f11)
	}
	if d4f11 >= d1f11 {
		t.Fatalf("δ=4 VD %v not below δ=1 VD %v", d4f11, d1f11)
	}
	if d1f12 <= d1f11 {
		t.Fatalf("f=1.2 VD %v not above f=1.1 VD %v", d1f12, d1f11)
	}
	// Infeasible cells (δ > n−1) are nil: δ=2 needs n≥3, δ=4 needs n≥5.
	if res.VD[idx(2, 1.1)][0] != nil {
		t.Fatal("δ=2, n=2 should be infeasible")
	}
	if res.VD[idx(4, 1.1)][2] != nil {
		t.Fatal("δ=4, n=4 should be infeasible")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Fatal("render missing title")
	}
}

func TestFig7QuickShape(t *testing.T) {
	res, err := Fig78(Fig7Configs, "7", ScaleQuick, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 2 {
		t.Fatal("expected 2 panels")
	}
	// Load accumulates: the average at the end must exceed the start.
	for _, p := range res.Panels {
		if p.Result.Avg.At(PaperSteps-1).Mean() <= p.Result.Avg.At(10).Mean() {
			t.Fatalf("δ=%d f=%g: load did not accumulate", p.Config.Delta, p.Config.F)
		}
	}
	// f=1.1 balances at least as well as f=1.8 (δ=1): smaller tail spread.
	if s11, s18 := res.MeanSpreadTail(0), res.MeanSpreadTail(1); s11 > s18 {
		t.Fatalf("f=1.1 spread %v worse than f=1.8 spread %v", s11, s18)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 7") {
		t.Fatal("render missing title")
	}
}

func TestFig8BetterThanFig7(t *testing.T) {
	f7, err := Fig78(Fig7Configs, "7", ScaleQuick, 3)
	if err != nil {
		t.Fatal(err)
	}
	f8, err := Fig78(Fig8Configs, "8", ScaleQuick, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline observation: δ=4 balances much better than
	// δ=1 at the same f.
	if f8.MeanSpreadTail(0) >= f7.MeanSpreadTail(0) {
		t.Fatalf("δ=4 spread %v not below δ=1 spread %v",
			f8.MeanSpreadTail(0), f7.MeanSpreadTail(0))
	}
}

func TestFig910Quick(t *testing.T) {
	res, err := Fig910(Fig8Configs[:1], "10", ScaleQuick, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 1 {
		t.Fatal("expected 1 panel")
	}
	for _, s := range Fig910SnapshotSteps {
		if res.EnvelopeWidth(0, s) < 0 {
			t.Fatal("negative envelope")
		}
		accs := res.Panels[0].Result.Snapshots[s-1]
		if len(accs) != PaperN {
			t.Fatalf("snapshot at %d has %d processors", s, len(accs))
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 10") {
		t.Fatal("render missing title")
	}
}

func TestFig910DeltaImpact(t *testing.T) {
	// Fig. 9 vs Fig. 10: "the large impact of parameter δ on the balancing
	// quality": envelopes shrink dramatically from δ=1 to δ=4 at f=1.1.
	f9, err := Fig910(Fig7Configs[:1], "9", ScaleQuick, 5)
	if err != nil {
		t.Fatal(err)
	}
	f10, err := Fig910(Fig8Configs[:1], "10", ScaleQuick, 5)
	if err != nil {
		t.Fatal(err)
	}
	if f10.EnvelopeWidth(0, 400) >= f9.EnvelopeWidth(0, 400) {
		t.Fatalf("δ=4 envelope %v not below δ=1 envelope %v",
			f10.EnvelopeWidth(0, 400), f9.EnvelopeWidth(0, 400))
	}
}

func TestTable1Quick(t *testing.T) {
	res, err := Table1(ScaleQuick, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) != len(Table1Cs) {
		t.Fatal("missing columns")
	}
	// Paper Table 1 shape: total borrow roughly constant in C; remote
	// borrow falls steeply with C.
	first, last := res.Metrics[0], res.Metrics[len(res.Metrics)-1]
	if first.TotalBorrow <= 0 {
		t.Fatal("no borrowing recorded")
	}
	if last.RemoteBorrow > first.RemoteBorrow {
		t.Fatalf("remote borrow did not fall with C: C=4→%v C=32→%v",
			first.RemoteBorrow, last.RemoteBorrow)
	}
	ratio := last.TotalBorrow / first.TotalBorrow
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("total borrow should be roughly C-independent, got ratio %v", ratio)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatal("render missing title")
	}
}

func TestTheoremCheckQuick(t *testing.T) {
	res, err := TheoremCheck(ScaleQuick, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(TheoremCases) {
		t.Fatal("missing rows")
	}
	for _, row := range res.Rows {
		// Measured ratio must respect the sampled bound f·FIX with Monte
		// Carlo slack, and must exceed ~1 (the generator is never below
		// average).
		if row.MeasuredRatio > row.SampledBound*1.25 {
			t.Fatalf("n=%d δ=%d f=%g: measured %v above bound %v",
				row.Case.N, row.Case.Delta, row.Case.F, row.MeasuredRatio, row.SampledBound)
		}
		if row.MeasuredRatio < 0.8 {
			t.Fatalf("generator ratio %v implausibly low", row.MeasuredRatio)
		}
		if row.Fix > row.Limit+1e-9 {
			t.Fatalf("FIX %v exceeds n→∞ limit %v", row.Fix, row.Limit)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestDecreaseCostQuick(t *testing.T) {
	res := DecreaseCost(ScaleQuick, 8)
	if len(res.Rows) != len(DecreaseCases) {
		t.Fatal("missing rows")
	}
	for _, row := range res.Rows {
		if float64(row.Lower) > row.SimMean*1.5+3 {
			t.Fatalf("%+v: sim %v below lower bound %d", row.Case, row.SimMean, row.Lower)
		}
		if row.UpperOK && row.SimMean > float64(row.Upper)*1.5+3 {
			t.Fatalf("%+v: sim %v above upper bound %d", row.Case, row.SimMean, row.Upper)
		}
	}
	// f-sensitivity: iterations fall as f grows (rows 0..3 share x,c).
	if !(res.Rows[3].SimMean < res.Rows[0].SimMean) {
		t.Fatalf("f=1.8 (%v) not cheaper than f=1.1 (%v)",
			res.Rows[3].SimMean, res.Rows[0].SimMean)
	}
	// c/x invariance: rows 0 and 8.
	a, b := res.Rows[0].SimMean, res.Rows[8].SimMean
	if a > 0 && (b < a*0.7 || b > a*1.3) {
		t.Fatalf("c/x invariance violated: %v vs %v", a, b)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineComparisonQuick(t *testing.T) {
	res, err := BaselineComparison(ScaleQuick, 9)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]BaselineRow{}
	for _, row := range res.Rows {
		byName[row.Name] = row
	}
	lm := byName["LM(f=1.1,δ=1)"]
	nob := byName["nobalance"]
	scat := byName["randomscatter"]
	if lm.MeanSpreadTail >= nob.MeanSpreadTail {
		t.Fatalf("LM spread %v not below no-balance %v", lm.MeanSpreadTail, nob.MeanSpreadTail)
	}
	// §5's point: the scatter strawman has very high variation-like
	// spread despite equal expected loads.
	if scat.MeanSpreadTail <= lm.MeanSpreadTail*2 {
		t.Fatalf("scatter spread %v suspiciously close to LM %v", scat.MeanSpreadTail, lm.MeanSpreadTail)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestAblationsQuick(t *testing.T) {
	res, err := Ablations(ScaleQuick, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ParamSweep) == 0 || len(res.Topology) != 5 || len(res.Reset) != 2 || len(res.CSweep) != 7 {
		t.Fatalf("missing rows: %d/%d/%d/%d", len(res.ParamSweep), len(res.Topology), len(res.Reset), len(res.CSweep))
	}
	// The §7 C claim: settlement communication falls steeply with C.
	if res.CSweep[0].RemoteBorrow <= res.CSweep[len(res.CSweep)-1].RemoteBorrow {
		t.Fatalf("remote borrow did not fall with C: C=1→%v C=64→%v",
			res.CSweep[0].RemoteBorrow, res.CSweep[len(res.CSweep)-1].RemoteBorrow)
	}
	// Within the sweep: for fixed f=1.1, spread shrinks with δ.
	spread := map[string]float64{}
	for _, row := range res.ParamSweep {
		spread[row.Name] = row.MeanSpreadTail
	}
	if spread["δ=8 f=1.1"] >= spread["δ=1 f=1.1"] {
		t.Fatalf("δ=8 spread %v not below δ=1 spread %v", spread["δ=8 f=1.1"], spread["δ=1 f=1.1"])
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Ablations") {
		t.Fatal("render missing title")
	}
}
