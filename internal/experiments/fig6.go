package experiments

import (
	"fmt"
	"io"
	"math"

	"lmbalance/internal/theory"
	"lmbalance/internal/trace"
)

// Fig6Combo is one (δ, f) curve family of the paper's Fig. 6.
type Fig6Combo struct {
	Delta int
	F     float64
}

// Fig6Combos are the parameter combinations plotted in Fig. 6:
// δ ∈ {1,2,4}, f ∈ {1.1,1.2}.
var Fig6Combos = []Fig6Combo{
	{1, 1.1}, {2, 1.1}, {4, 1.1},
	{1, 1.2}, {2, 1.2}, {4, 1.2},
}

// Fig6Ns are the processor counts of Fig. 6.
var Fig6Ns = []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 15, 20, 25, 30, 35}

// Fig6Steps is the maximum number of balancing steps of Fig. 6.
const Fig6Steps = 150

// Fig6Result holds the variation density surface: VD[combo][nIdx][step].
type Fig6Result struct {
	Combos []Fig6Combo
	Ns     []int
	Steps  int
	// VD[c][i][t] is the variation density for Combos[c], Ns[i] after
	// t+1 balancing steps, computed by the exact moment recursion
	// (internal/theory/moments.go). nil marks infeasible cells (δ > n−1).
	VD [][][]float64
	// MCDeviation is the largest |exact − MonteCarlo| observed on the
	// cross-check cell (the largest n, first combo), a guard against
	// recursion regressions.
	MCDeviation float64
}

// Fig6 reproduces the paper's Fig. 6: the variation density of a
// non-generating processor's load in the one-processor-generator model,
// over δ ∈ {1,2,4}, f ∈ {1.1,1.2}, n ∈ {2..10,15..35}, up to 150 steps.
// The curves are exact (moment recursion); scale only controls the Monte
// Carlo cross-check effort.
func Fig6(scale Scale, seed uint64) (*Fig6Result, error) {
	res := &Fig6Result{Combos: Fig6Combos, Ns: Fig6Ns, Steps: Fig6Steps}
	res.VD = make([][][]float64, len(Fig6Combos))
	for c, combo := range Fig6Combos {
		res.VD[c] = make([][]float64, len(Fig6Ns))
		for i, n := range Fig6Ns {
			if combo.Delta > n-1 {
				// δ candidates are impossible below n = δ+1; the paper's
				// plot starts each curve at the first feasible n.
				res.VD[c][i] = nil
				continue
			}
			cfg := theory.VDConfig{
				N: n, Delta: combo.Delta, F: combo.F,
				Steps: Fig6Steps, Mode: theory.VDTrue,
			}
			mom, err := theory.VDExactMoments(cfg)
			if err != nil {
				return nil, fmt.Errorf("fig6 δ=%d f=%g n=%d: %w", combo.Delta, combo.F, n, err)
			}
			res.VD[c][i] = mom.VD
		}
	}
	// Monte Carlo cross-check on one representative cell.
	checkCfg := theory.VDConfig{
		N: Fig6Ns[len(Fig6Ns)-1], Delta: Fig6Combos[0].Delta, F: Fig6Combos[0].F,
		Steps: Fig6Steps, Mode: theory.VDTrue,
	}
	mc, err := theory.VDMonteCarlo(checkCfg, scale.vdRuns(), seed)
	if err != nil {
		return nil, err
	}
	exact := res.VD[0][len(Fig6Ns)-1]
	for t := range mc {
		if d := math.Abs(mc[t] - exact[t]); d > res.MCDeviation {
			res.MCDeviation = d
		}
	}
	return res, nil
}

// Final returns the VD after the last step for combo index c and
// processor-count index i, or 0 when infeasible.
func (r *Fig6Result) Final(c, i int) float64 {
	if r.VD[c][i] == nil {
		return 0
	}
	return r.VD[c][i][r.Steps-1]
}

// Render writes two tables: VD(150 steps) as a function of n per (δ,f),
// and the VD-vs-steps curve for the largest n.
func (r *Fig6Result) Render(w io.Writer) error {
	if err := header(w, "Figure 6: variation density (one-processor-generator model, exact)"); err != nil {
		return err
	}
	headers := []string{"n"}
	for _, c := range r.Combos {
		headers = append(headers, fmt.Sprintf("δ=%d,f=%g", c.Delta, c.F))
	}
	t1 := trace.NewTable(fmt.Sprintf("VD after %d balancing steps", r.Steps), headers...)
	for i, n := range r.Ns {
		row := make([]any, 0, len(headers))
		row = append(row, n)
		for c := range r.Combos {
			if r.VD[c][i] == nil {
				row = append(row, "-")
			} else {
				row = append(row, r.Final(c, i))
			}
		}
		t1.AddRow(row...)
	}
	if err := t1.WriteText(w); err != nil {
		return err
	}

	lastN := len(r.Ns) - 1
	t2 := trace.NewTable(fmt.Sprintf("VD vs balancing steps at n=%d", r.Ns[lastN]), headers...)
	t2.Headers[0] = "steps"
	for _, step := range []int{1, 2, 5, 10, 20, 40, 80, 150} {
		if step > r.Steps {
			continue
		}
		row := make([]any, 0, len(headers))
		row = append(row, step)
		for c := range r.Combos {
			if r.VD[c][lastN] == nil {
				row = append(row, "-")
			} else {
				row = append(row, r.VD[c][lastN][step-1])
			}
		}
		t2.AddRow(row...)
	}
	if err := t2.WriteText(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\nMonte Carlo cross-check max deviation: %.5f\n", r.MCDeviation)
	return err
}
