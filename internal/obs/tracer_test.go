package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTracerConcurrentWraparound hammers a full-size ring from many
// writers at once — far more events than capacity, so the ring wraps
// many times mid-race. Run under -race this is the data-race gate for
// the tracer; the invariants checked after the dust settles (exact
// total, exact buffered count, every buffered event intact and
// attributable to its writer) catch torn writes and lost increments.
func TestTracerConcurrentWraparound(t *testing.T) {
	tr := NewTracer(DefaultTraceCapacity) // the real 4096-event ring
	const writers = 8
	const perWriter = 3 * DefaultTraceCapacity / writers

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Writers alternate the three recording entry points so
				// they all share the race gate.
				switch i % 3 {
				case 0:
					tr.Record(w, "k", strconv.Itoa(i))
				case 1:
					tr.RecordOp(w, uint64(w+1), "k", strconv.Itoa(i))
				default:
					tr.RecordEvent(Event{Node: w, Kind: "k", Detail: strconv.Itoa(i)})
				}
			}
		}(w)
	}
	// Concurrent readers exercise the read side of the lock too.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = tr.Events()
				_ = tr.Len()
				_ = tr.ByOp(3)
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()

	if got, want := tr.Total(), uint64(writers*perWriter); got != want {
		t.Fatalf("Total = %d, want %d", got, want)
	}
	if got := tr.Len(); got != DefaultTraceCapacity {
		t.Fatalf("Len after wraparound = %d, want %d", got, DefaultTraceCapacity)
	}
	evs := tr.Events()
	if len(evs) != DefaultTraceCapacity {
		t.Fatalf("Events len = %d, want %d", len(evs), DefaultTraceCapacity)
	}
	for i, ev := range evs {
		if ev.Node < 0 || ev.Node >= writers || ev.Kind != "k" {
			t.Fatalf("event %d corrupted: %+v", i, ev)
		}
		if seq, err := strconv.Atoi(ev.Detail); err != nil || seq < 0 || seq >= perWriter {
			t.Fatalf("event %d has torn detail: %+v", i, ev)
		}
		if ev.At.IsZero() {
			t.Fatalf("event %d missing timestamp: %+v", i, ev)
		}
		if ev.Op != 0 && (ev.Op < 1 || ev.Op > writers) {
			t.Fatalf("event %d has torn op: %+v", i, ev)
		}
	}
}

// TestTraceJSONLRoundTrip re-parses the tracer's JSONL export (what the
// /trace endpoint serves) field for field: every event must survive the
// encode/decode cycle with node, op, kind, detail and timestamp intact
// and in recording order.
func TestTraceJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(64)
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	want := []Event{
		{At: base, Node: 0, Op: 0xdeadbeefcafe, Kind: "initiate", Detail: "f=0.50 target=3"},
		{At: base.Add(time.Millisecond), Node: 3, Op: 0xdeadbeefcafe, Kind: "freeze", Detail: "from=0"},
		{At: base.Add(2 * time.Millisecond), Node: 0, Kind: "resolve", Detail: "phase=idle"},
		{At: base.Add(3 * time.Millisecond), Node: 7, Op: 1 << 63, Kind: "transfer", Detail: `amount=12 detail="quoted, with commas"`},
		{At: base.Add(4 * time.Millisecond), Node: -1, Kind: "quit_broadcast"},
	}
	for _, ev := range want {
		tr.RecordEvent(ev)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var got []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		got = append(got, ev)
	}
	if len(got) != len(want) {
		t.Fatalf("round-tripped %d events, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if !g.At.Equal(w.At) {
			t.Errorf("event %d At = %v, want %v", i, g.At, w.At)
		}
		if g.Node != w.Node || g.Op != w.Op || g.Kind != w.Kind || g.Detail != w.Detail {
			t.Errorf("event %d = %+v, want %+v", i, g, w)
		}
	}
}

// TestTracerByOp checks the op-id index: only matching events, oldest
// first, and the reserved zero id never matches.
func TestTracerByOp(t *testing.T) {
	tr := NewTracer(8)
	tr.RecordOp(1, 42, "freeze", "a")
	tr.Record(2, "noise", "")
	tr.RecordOp(2, 42, "transfer", "b")
	tr.RecordOp(3, 7, "freeze", "other op")
	tr.RecordEvent(Event{Node: 4, Kind: "untagged"}) // Op == 0

	evs := tr.ByOp(42)
	if len(evs) != 2 || evs[0].Kind != "freeze" || evs[1].Kind != "transfer" {
		t.Fatalf("ByOp(42) = %+v", evs)
	}
	if got := tr.ByOp(0); got != nil {
		t.Fatalf("ByOp(0) = %+v, want nil (zero id is reserved)", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONLOp(&buf, 7); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 1 {
		t.Fatalf("WriteJSONLOp(7) wrote %d lines, want 1:\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), `"op":7`) {
		t.Fatalf("WriteJSONLOp(7) line missing op field:\n%s", buf.String())
	}
	// op is omitempty: untagged events must not carry the field at all.
	var all bytes.Buffer
	if err := tr.WriteJSONL(&all); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(all.String(), "\n") {
		if strings.Contains(line, "untagged") && strings.Contains(line, `"op"`) {
			t.Fatalf("untagged event leaked an op field: %s", line)
		}
	}

	var nilT *Tracer
	if nilT.ByOp(42) != nil {
		t.Fatal("nil tracer ByOp should be nil")
	}
	nilT.RecordOp(1, 42, "k", "") // must not panic
}

// TestTracerDroppedCounter: overwriting a full ring counts each evicted
// event, the count is visible both through Dropped() and as the
// trace_dropped_total line on a registry's /metrics exposition, and a
// ring that never wraps reports zero.
func TestTracerDroppedCounter(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 4; i++ {
		tr.Record(0, "k", "fits")
	}
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("Dropped() = %d before the ring wrapped", d)
	}
	for i := 0; i < 10; i++ {
		tr.Record(0, "k", "evicts")
	}
	if d := tr.Dropped(); d != 10 {
		t.Fatalf("Dropped() = %d after 10 overwrites, want 10", d)
	}

	// Surfaced on the registry: Tracer() auto-attaches the counter,
	// SetTracer rebinds it to the replacement ring.
	reg := NewRegistry()
	reg.SetTracer(tr)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trace_dropped_total 10") {
		t.Fatalf("/metrics missing trace_dropped_total:\n%s", buf.String())
	}

	reg2 := NewRegistry()
	reg2.Tracer().Record(0, "k", "fresh")
	buf.Reset()
	if err := reg2.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trace_dropped_total 0") {
		t.Fatalf("auto-created tracer not exported:\n%s", buf.String())
	}

	var nilT *Tracer
	if nilT.Dropped() != 0 {
		t.Fatal("nil tracer Dropped should be 0")
	}
}
