package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultSeriesCapacity is the ring capacity NewRecorder uses when the
// caller does not size one explicitly.
const DefaultSeriesCapacity = 1024

// Recorder is the time-series side of the observability layer: a
// fixed-capacity ring of periodic snapshots over caller-selected
// sources — gauges, histogram moments (mean/std/VD), counter values and
// per-second counter rates. Where a Histogram answers "what is the
// distribution so far", the recorder answers "how did it get there":
// the paper's §5 claim is that the variation density converges *in t*,
// and only a trajectory can show that.
//
// Columns are declared up front (Column and the typed helpers); Sample
// then appends one row — one float64 per column plus a timestamp — and
// Start runs Sample on a background ticker. Old rows are overwritten
// once the ring is full, so a recorder never grows; recording never
// allocates beyond the preallocated ring. All methods no-op on a nil
// receiver, matching the rest of the package's disabled path.
type Recorder struct {
	mu   sync.Mutex
	cols []seriesColumn
	at   []int64     // unix microseconds, parallel to rows
	rows [][]float64 // ring; each row has len(cols) values
	next int
	full bool

	period time.Duration // last Start period (0 before Start)
	stop   chan struct{}
	done   chan struct{}
}

// seriesColumn is one recorded source. For rate columns the sampled
// value is the per-second increase of fn since the previous sample.
type seriesColumn struct {
	name  string
	fn    func() float64
	rate  bool
	prev  float64
	prevT int64 // unix microseconds of the previous sample; 0 = none
}

// NewRecorder returns a recorder holding the last capacity samples
// (DefaultSeriesCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultSeriesCapacity
	}
	return &Recorder{
		at:   make([]int64, capacity),
		rows: make([][]float64, capacity),
	}
}

// Column declares one sampled source. Declare every column before the
// first Sample/Start: changing the column set afterwards resets the
// ring (rows of a different width cannot be compared).
func (r *Recorder) Column(name string, fn func() float64) *Recorder {
	if r == nil || fn == nil {
		return r
	}
	r.mu.Lock()
	r.cols = append(r.cols, seriesColumn{name: name, fn: fn})
	r.resetLocked()
	r.mu.Unlock()
	return r
}

// RateColumn declares a source recorded as a per-second rate: each
// sample stores (fn − previous fn) / elapsed seconds. The first sample
// of a rate column is 0 (no baseline yet). Use it to turn cumulative
// counters — e.g. per-reason abort totals — into abort *rates* over the
// run.
func (r *Recorder) RateColumn(name string, fn func() float64) *Recorder {
	if r == nil || fn == nil {
		return r
	}
	r.mu.Lock()
	r.cols = append(r.cols, seriesColumn{name: name, fn: fn, rate: true})
	r.resetLocked()
	r.mu.Unlock()
	return r
}

// GaugeColumn records a gauge's instantaneous value.
func (r *Recorder) GaugeColumn(name string, g *Gauge) *Recorder {
	return r.Column(name, func() float64 { return float64(g.Value()) })
}

// CounterColumn records a counter's cumulative value.
func (r *Recorder) CounterColumn(name string, c *Counter) *Recorder {
	return r.Column(name, func() float64 { return float64(c.Value()) })
}

// CounterRateColumn records a counter as a per-second rate.
func (r *Recorder) CounterRateColumn(name string, c *Counter) *Recorder {
	return r.RateColumn(name, func() float64 { return float64(c.Value()) })
}

// HistogramColumns records a histogram's online moments — mean, std
// and the paper's variation density — as three columns named
// base_mean, base_std, base_vd.
func (r *Recorder) HistogramColumns(base string, h *Histogram) *Recorder {
	r.Column(base+"_mean", h.Mean)
	r.Column(base+"_std", h.Std)
	r.Column(base+"_vd", h.VD)
	return r
}

// resetLocked drops buffered rows (the column set changed).
func (r *Recorder) resetLocked() {
	r.next, r.full = 0, false
	for i := range r.rows {
		r.rows[i] = nil
	}
}

// Sample takes one snapshot of every column now.
func (r *Recorder) Sample() {
	if r == nil {
		return
	}
	r.sampleAt(time.Now())
}

func (r *Recorder) sampleAt(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	nowUS := now.UnixMicro()
	row := r.rows[r.next]
	if cap(row) < len(r.cols) {
		row = make([]float64, len(r.cols))
	}
	row = row[:len(r.cols)]
	for i := range r.cols {
		c := &r.cols[i]
		v := c.fn()
		if c.rate {
			rate := 0.0
			if c.prevT != 0 && nowUS > c.prevT {
				rate = (v - c.prev) / (float64(nowUS-c.prevT) / 1e6)
			}
			c.prev, c.prevT = v, nowUS
			v = rate
		}
		row[i] = v
	}
	r.at[r.next] = nowUS
	r.rows[r.next] = row
	r.next++
	if r.next == len(r.rows) {
		r.next = 0
		r.full = true
	}
}

// Start samples every period on a background goroutine until Stop.
// A second Start replaces the previous schedule. Period <= 0 selects
// 100 ms.
func (r *Recorder) Start(period time.Duration) {
	if r == nil {
		return
	}
	if period <= 0 {
		period = 100 * time.Millisecond
	}
	r.Stop()
	stop := make(chan struct{})
	done := make(chan struct{})
	r.mu.Lock()
	r.period, r.stop, r.done = period, stop, done
	r.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case t := <-tick.C:
				r.sampleAt(t)
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts background sampling (idempotent; buffered samples stay
// readable) and waits for the sampling goroutine to exit.
func (r *Recorder) Stop() {
	if r == nil {
		return
	}
	r.mu.Lock()
	stop, done := r.stop, r.done
	r.stop, r.done = nil, nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Columns returns the declared column names in declaration order.
func (r *Recorder) Columns() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.cols))
	for i := range r.cols {
		out[i] = r.cols[i].name
	}
	return out
}

// Len returns the number of buffered samples.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.rows)
	}
	return r.next
}

// SeriesSample is one buffered snapshot: a timestamp plus one value per
// column, in column order.
type SeriesSample struct {
	AtUS int64     `json:"at_us"` // unix microseconds
	V    []float64 `json:"v"`
}

// Samples returns the buffered snapshots, oldest first. The returned
// rows are copies, safe to hold across further sampling.
func (r *Recorder) Samples() []SeriesSample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := func(i int) int { return i }
	n := r.next
	if r.full {
		n = len(r.rows)
		idx = func(i int) int { return (r.next + i) % len(r.rows) }
	}
	out := make([]SeriesSample, n)
	for i := 0; i < n; i++ {
		j := idx(i)
		out[i] = SeriesSample{AtUS: r.at[j], V: append([]float64(nil), r.rows[j]...)}
	}
	return out
}

// SeriesData is the JSON document /series serves and Aggregate
// consumes: the column names, the sampling period, and the samples
// oldest first.
type SeriesData struct {
	Columns  []string       `json:"columns"`
	PeriodMS float64        `json:"period_ms"`
	Samples  []SeriesSample `json:"samples"`
}

// Data snapshots the recorder as a SeriesData document. A nil recorder
// yields an empty document (non-nil slices, so it marshals as [] not
// null).
func (r *Recorder) Data() SeriesData {
	d := SeriesData{Columns: []string{}, Samples: []SeriesSample{}}
	if r == nil {
		return d
	}
	d.Columns = r.Columns()
	if len(d.Columns) == 0 {
		d.Columns = []string{}
	}
	if s := r.Samples(); s != nil {
		d.Samples = s
	}
	r.mu.Lock()
	d.PeriodMS = float64(r.period) / float64(time.Millisecond)
	r.mu.Unlock()
	return d
}

// WriteJSON writes the recorder as a SeriesData JSON document.
func (r *Recorder) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(r.Data())
}
