package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`cluster_aborts_total{reason="timeout"}`).Add(7)
	reg.Histogram(`cluster_phase_seconds{phase="reply"}`, LatencyBuckets).Observe(1e-4)
	reg.Tracer().Record(3, "abort", "reason=timeout")

	s, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if code, body := get(t, s.URL()+"/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body := get(t, s.URL()+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`cluster_aborts_total{reason="timeout"} 7`,
		`cluster_phase_seconds_count{phase="reply"} 1`,
		"# TYPE cluster_phase_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	code, body = get(t, s.URL()+"/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	if _, ok := doc["memstats"]; !ok {
		t.Fatal("/debug/vars missing process memstats")
	}
	metrics, ok := doc["metrics"].(map[string]any)
	if !ok {
		t.Fatalf("/debug/vars missing registry metrics: %v", doc)
	}
	if metrics[`cluster_aborts_total{reason="timeout"}`].(float64) != 7 {
		t.Fatalf("registry metric missing from /debug/vars: %v", metrics)
	}
	code, body = get(t, s.URL()+"/trace")
	if code != 200 {
		t.Fatalf("/trace = %d", code)
	}
	var ev Event
	if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &ev); err != nil {
		t.Fatalf("/trace line not JSON: %v\n%s", err, body)
	}
	if ev.Kind != "abort" || ev.Node != 3 {
		t.Fatalf("traced event = %+v", ev)
	}
	if code, body := get(t, s.URL()+"/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d %q", code, body)
	}
}

// TestDebugServerExtraHandlers: DebugOptions.Extra mounts additional
// endpoints (e.g. /jobs, /health) without touching the built-ins.
func TestDebugServerExtraHandlers(t *testing.T) {
	reg := NewRegistry()
	s, err := ServeDebugOpts("127.0.0.1:0", reg, DebugOptions{
		Extra: map[string]http.HandlerFunc{
			"/jobs": func(w http.ResponseWriter, _ *http.Request) {
				fmt.Fprint(w, "jobs ok")
			},
			"/metrics": func(w http.ResponseWriter, _ *http.Request) {
				fmt.Fprint(w, "hijacked")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if code, body := get(t, s.URL()+"/jobs"); code != 200 || body != "jobs ok" {
		t.Fatalf("/jobs = %d %q", code, body)
	}
	if _, body := get(t, s.URL()+"/metrics"); body == "hijacked" {
		t.Fatal("built-in /metrics was overridden by Extra")
	}
}

func TestDebugServerNilRegistry(t *testing.T) {
	s, err := ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if code, _ := get(t, s.URL()+"/metrics"); code != 200 {
		t.Fatalf("/metrics on nil registry = %d", code)
	}
	if code, body := get(t, s.URL()+"/debug/vars"); code != 200 || !strings.Contains(body, "metrics") {
		t.Fatalf("/debug/vars on nil registry = %d %q", code, body)
	}
	if code, _ := get(t, s.URL()+"/trace"); code != 200 {
		t.Fatalf("/trace on nil registry = %d", code)
	}
}

// TestDebugServerNoLeak mirrors the cluster shutdown leak check: after
// Close returns, every server goroutine (the serve loop and any
// keep-alive connection handlers) must be gone.
func TestDebugServerNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		s, err := ServeDebug("127.0.0.1:0", NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		// Touch several endpoints so connection handlers actually spawn.
		for _, p := range []string{"/healthz", "/metrics", "/debug/vars", "/trace"} {
			if code, _ := get(t, s.URL()+p); code != 200 {
				t.Fatalf("%s = %d", p, code)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		// Close is idempotent.
		if err := s.Close(); err != nil {
			t.Fatalf("second close: %v", err)
		}
	}
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, after, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServeDebugBadAddr(t *testing.T) {
	if _, err := ServeDebug("256.0.0.1:http", nil); err == nil {
		t.Fatal("want error for a bad listen address")
	} else if !strings.Contains(fmt.Sprint(err), "debug listen") {
		t.Fatalf("unhelpful error: %v", err)
	}
}
