package obs

import "testing"

// nilReg is a package-level nil registry so the compiler cannot prove
// the handles nil at the benchmark call sites and fold the loop away.
var nilReg *Registry

// BenchmarkObsDisabled measures the disabled-instrumentation path: a
// component holding handles from a nil registry. Acceptance: ≤ 2 ns/op
// and 0 allocs — cheap enough to leave compiled into every hot path.
func BenchmarkObsDisabled(b *testing.B) {
	c := nilReg.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkObsDisabledHistogram is the disabled path for histograms.
func BenchmarkObsDisabledHistogram(b *testing.B) {
	h := nilReg.Histogram("h", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

// BenchmarkObsCounter is one enabled counter increment (one atomic
// add); must be allocation-free.
func BenchmarkObsCounter(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != int64(b.N) {
		b.Fatal("lost increments")
	}
}

// BenchmarkObsGauge is one enabled gauge set.
func BenchmarkObsGauge(b *testing.B) {
	reg := NewRegistry()
	g := reg.Gauge("g")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

// BenchmarkObsHistogram is one enabled observation on the default
// 20-bucket latency scheme (bucket scan + three atomic adds); must be
// allocation-free.
func BenchmarkObsHistogram(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("h", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
	if h.Count() != int64(b.N) {
		b.Fatal("lost observations")
	}
}

// BenchmarkObsTracer is one ring-buffer event record (mutex + struct
// copy).
func BenchmarkObsTracer(b *testing.B) {
	tr := NewTracer(DefaultTraceCapacity)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(1, "ev", "detail")
	}
}
