package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"
)

// atomicFloat is an atomic float64 accumulator (CAS on the bit
// pattern). Adds are lock-free and allocation-free.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket histogram with online first and second
// moments, so mean, standard deviation and the paper's variation
// density VD = sqrt(E(l²)−E(l)²)/E(l) are available live without
// storing samples. Buckets are upper bounds (ascending) plus an
// implicit +Inf overflow bucket. Observations are a linear bucket scan
// (bucket counts are small and fixed) plus three atomic adds — no
// locks, no allocation. All methods no-op on a nil receiver.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomicFloat
	sumsq  atomicFloat
}

// NewHistogram builds a histogram with the given ascending upper
// bounds. Empty bounds yield a single +Inf bucket (moments only).
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	h.sumsq.Add(v * v)
}

// ObserveSince records the seconds elapsed since t0 — the idiom for
// protocol-phase timings.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the mean observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.sum.Load() / float64(h.count.Load())
}

// Std returns the population standard deviation from the online
// moments, or 0 when empty. (Clamped at 0 against floating cancellation
// when all observations are equal.)
func (h *Histogram) Std() float64 {
	if h == nil {
		return 0
	}
	n := float64(h.count.Load())
	if n == 0 {
		return 0
	}
	mean := h.sum.Load() / n
	varr := h.sumsq.Load()/n - mean*mean
	if varr < 0 {
		varr = 0
	}
	return math.Sqrt(varr)
}

// VD returns the variation density Std/Mean — the paper's §5 quality
// measure — or 0 when the mean is 0.
func (h *Histogram) VD() float64 {
	m := h.Mean()
	if m == 0 {
		return 0
	}
	return h.Std() / m
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// inside the bucket where the cumulative count crosses the rank. The
// overflow bucket reports its lower bound (there is no upper edge).
// Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i >= len(h.bounds) {
				return lo // overflow bucket: no upper edge
			}
			hi := h.bounds[i]
			frac := (rank - cum) / c
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Buckets returns copies of the bucket upper bounds and their
// (non-cumulative) counts, overflow last.
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	if h == nil {
		return nil, nil
	}
	bounds = append([]float64(nil), h.bounds...)
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// writePrometheus emits the histogram in exposition format: cumulative
// le buckets, _sum and _count, preserving any inline labels.
func (h *Histogram) writePrometheus(w io.Writer, base, labels string) error {
	withLe := func(le string) string {
		if labels == "" {
			return fmt.Sprintf("%s_bucket{le=%q}", base, le)
		}
		return fmt.Sprintf("%s_bucket{%s,le=%q}", base, labels, le)
	}
	suffixed := func(suffix string) string {
		if labels == "" {
			return base + suffix
		}
		return fmt.Sprintf("%s%s{%s}", base, suffix, labels)
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", withLe(le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %g\n", suffixed("_sum"), h.sum.Load()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", suffixed("_count"), h.count.Load())
	return err
}

// jsonValue renders the histogram for Registry.WriteJSON.
func (h *Histogram) jsonValue() map[string]any {
	bounds, counts := h.Buckets()
	buckets := make(map[string]int64, len(counts))
	for i, c := range counts {
		le := "+Inf"
		if i < len(bounds) {
			le = formatFloat(bounds[i])
		}
		buckets[le] = c
	}
	return map[string]any{
		"count":   h.Count(),
		"sum":     h.Sum(),
		"mean":    h.Mean(),
		"std":     h.Std(),
		"vd":      h.VD(),
		"buckets": buckets,
	}
}

func formatFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}

// ExpBuckets returns n exponential bucket bounds: start, start*factor,
// start*factor², … It panics on non-positive start/factor or n < 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LogBuckets returns log-spaced bucket bounds covering [lo, hi] with
// perDecade buckets per factor-of-10: lo·10^(i/perDecade) for
// i = 0 … ⌈perDecade·log₁₀(hi/lo)⌉, so the last bound is ≥ hi. It is
// the bucket scheme for quantities spanning many orders of magnitude
// (e.g. sojourn times from microseconds to seconds): every bucket has
// the same *relative* width 10^(1/perDecade)−1, which bounds the
// relative error of Quantile uniformly across the range — a doubling
// scheme like ExpBuckets gives up to 100% relative error per bucket,
// which crushes a p99 read out of a seconds-wide top bucket. It panics
// on lo <= 0, hi <= lo, or perDecade < 1.
func LogBuckets(lo, hi float64, perDecade int) []float64 {
	if lo <= 0 || hi <= lo || perDecade < 1 {
		panic("obs: LogBuckets needs 0 < lo < hi and perDecade >= 1")
	}
	n := int(math.Ceil(float64(perDecade) * math.Log10(hi/lo)))
	out := make([]float64, n+1)
	for i := range out {
		out[i] = lo * math.Pow(10, float64(i)/float64(perDecade))
	}
	return out
}

// LatencyBuckets is the default bucket scheme for protocol-phase
// timings in seconds: 10 µs … ~5 s, doubling. A healthy in-process
// reply lands in the first few buckets; socket-latency stalls and
// timeout-scale waits land in the top ones, so the freeze-window loss
// the wirecost experiment exposed is visible in one histogram.
var LatencyBuckets = ExpBuckets(10e-6, 2, 20)

// SojournBuckets is the default bucket scheme for end-to-end job
// sojourn times in seconds: 1 µs … 10 s at 10 buckets per decade, so a
// quantile read anywhere in the range carries at most ~26% relative
// bucket error (see LogBuckets and TestLogBucketsQuantileErrorBound).
var SojournBuckets = LogBuckets(1e-6, 10, 10)

// LoadBuckets is the default bucket scheme for live load-distribution
// histograms: 0, 1, 2, 4, … 4096 packets.
var LoadBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
