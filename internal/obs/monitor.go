package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the continuous health monitor: a poller that scrapes the
// cluster's merged view (Aggregate) on an interval, maintains rolling
// windows over the cumulative sojourn histograms, and evaluates a
// latency SLO as multi-window burn rates — the Google-SRE-style
// alerting rule where an alert fires only when the error budget is
// being consumed faster than `Burn`× the sustainable rate over BOTH a
// short window (is it still happening?) and a long window (is it
// material?). Alongside the SLO it renders per-node health verdicts
// from the load gauges, abort-rate EWMAs and sendq depth, and serves
// the whole thing as the /health JSON endpoint. Dead upstreams degrade
// the view (verdict "unreachable"); the monitor itself never errors on
// them.

// SLO is a latency objective: "quantile of the sojourn distribution
// stays under Threshold", evaluated over Short/Long rolling windows.
//
// The error budget is 1−Quantile (p99 → 1% of completions may exceed
// the threshold). The burn rate of a window is
//
//	badFraction / (1 − Quantile)
//
// i.e. how many times faster than "just barely meeting the SLO" the
// budget is being spent. Burn is the alerting threshold on that rate.
type SLO struct {
	Quantile  float64       // e.g. 0.99
	Threshold float64       // seconds, e.g. 0.020
	Short     time.Duration // fast window: is it still happening?
	Long      time.Duration // slow window: is it material?
	Burn      float64       // alert when both windows burn ≥ this (default 2)
}

// DefaultBurn is the alerting burn-rate threshold when an SLO string
// does not name one: budget consumed twice as fast as sustainable.
const DefaultBurn = 2.0

// ParseSLO parses an objective like
//
//	p99 < 20ms over 30s/5m
//	p99<20ms over 30s/5m burn 2
//
// Spaces are optional everywhere. The quantile is a percentile (p99,
// p99.9), the threshold a Go duration, the windows short/long Go
// durations, and the optional trailing burn value defaults to
// DefaultBurn.
func ParseSLO(s string) (SLO, error) {
	raw := s
	s = strings.ReplaceAll(strings.ToLower(s), " ", "")
	bad := func(why string) (SLO, error) {
		return SLO{}, fmt.Errorf("obs: bad SLO %q: %s (want e.g. \"p99<20ms over 30s/5m\")", raw, why)
	}
	if !strings.HasPrefix(s, "p") {
		return bad("must start with a percentile like p99")
	}
	lt := strings.IndexByte(s, '<')
	if lt < 0 {
		return bad("missing '<'")
	}
	pct, err := strconv.ParseFloat(s[1:lt], 64)
	if err != nil || pct <= 0 || pct >= 100 {
		return bad("percentile must be in (0,100)")
	}
	rest := s[lt+1:]
	ov := strings.Index(rest, "over")
	if ov <= 0 {
		return bad("missing 'over <short>/<long>'")
	}
	thr, err := time.ParseDuration(rest[:ov])
	if err != nil || thr <= 0 {
		return bad("threshold must be a positive duration")
	}
	rest = rest[ov+len("over"):]
	burn := DefaultBurn
	if bi := strings.Index(rest, "burn"); bi >= 0 {
		bs := strings.TrimPrefix(rest[bi+len("burn"):], "=")
		burn, err = strconv.ParseFloat(bs, 64)
		if err != nil || burn <= 0 {
			return bad("burn must be a positive number")
		}
		rest = rest[:bi]
	}
	shortS, longS, ok := strings.Cut(rest, "/")
	if !ok {
		return bad("windows must be <short>/<long>")
	}
	short, err := time.ParseDuration(shortS)
	if err != nil || short <= 0 {
		return bad("short window must be a positive duration")
	}
	long, err := time.ParseDuration(longS)
	if err != nil || long < short {
		return bad("long window must be a duration >= the short window")
	}
	return SLO{
		Quantile:  pct / 100,
		Threshold: thr.Seconds(),
		Short:     short,
		Long:      long,
		Burn:      burn,
	}, nil
}

// String renders the SLO back in its parseable form.
func (s SLO) String() string {
	return fmt.Sprintf("p%g < %s over %s/%s burn %g",
		s.Quantile*100,
		time.Duration(s.Threshold*float64(time.Second)),
		s.Short, s.Long, s.Burn)
}

// DefaultSLOBase is the histogram family the monitor watches when
// MonitorConfig.Base is empty: the serve layer's per-node end-to-end
// job sojourn histograms.
const DefaultSLOBase = "serve_sojourn_seconds"

// Per-node verdict thresholds (MonitorConfig overrides; zero → default).
const (
	// DefaultSaturateFactor: a node whose load gauge exceeds this
	// multiple of the cluster mean load is "saturated" …
	DefaultSaturateFactor = 3.0
	// … provided its load also clears this absolute floor (a 3×
	// imbalance over a near-empty cluster is noise, not saturation).
	DefaultSaturateMin = 16.0
	// DefaultAbortRateMax: a node whose abort-rate EWMA (aborts/sec
	// across all reasons) exceeds this is "degraded".
	DefaultAbortRateMax = 5.0
	// DefaultSendqMax: a node whose summed sendq depth exceeds this is
	// "degraded" — its transport is backing up.
	DefaultSendqMax = 1024.0
	// abortEWMAAlpha smooths the per-poll abort rate.
	abortEWMAAlpha = 0.3
)

// MonitorConfig configures a Monitor. URLs and SLO are required; every
// other field has a usable zero value.
type MonitorConfig struct {
	URLs []string // upstream debug endpoints (same as Aggregate)
	SLO  SLO

	Base    string        // sojourn histogram family (default DefaultSLOBase)
	Period  time.Duration // poll interval for Start (default 1s)
	Timeout time.Duration // per-scrape timeout (default DefaultScrapeTimeout)
	Tracer  *Tracer       // receives slo_alert / slo_clear / node_verdict events

	// Obs, when non-nil, exports the alert lifecycle as metrics:
	// monitor_alerts_total{severity=...} counts transitions into each
	// alert state (so an aggregator can count firings across restarts)
	// and monitor_alert_active{severity=...} gauges which are in force
	// right now. Severities: slo (the burn-rate alert), and the per-node
	// verdicts degraded, saturated, unreachable.
	Obs *Registry

	// OnAlert, when non-nil, runs (in its own goroutine) every time the
	// SLO burn-rate alert transitions from clear to firing, with the
	// health document that fired it. cmd/lbnode uses it to trigger a
	// flight-recorder snapshot, so every alert leaves a replayable
	// incident artifact behind.
	OnAlert func(HealthDoc)

	// Verdict thresholds; zero means the Default* constant.
	SaturateFactor float64
	SaturateMin    float64
	AbortRateMax   float64
	SendqMax       float64
}

// monSeverities are the alert-lifecycle metric labels.
var monSeverities = []string{"slo", "degraded", "saturated", "unreachable"}

// NodeHealth is one upstream's slice of the /health document.
type NodeHealth struct {
	URL       string  `json:"url"`
	OK        bool    `json:"ok"`
	Verdict   string  `json:"verdict"` // healthy|degraded|saturated|unreachable
	Load      float64 `json:"load"`    // max per-node load gauge in this scrape
	Sendq     float64 `json:"sendq"`   // summed sendq depth
	AbortEWMA float64 `json:"abort_rate_ewma"`
	ScrapeMS  float64 `json:"scrape_ms"`
	Err       string  `json:"err,omitempty"`
}

// HealthDoc is the /health JSON document: the SLO burn-rate verdict
// plus per-node health.
type HealthDoc struct {
	At     time.Time `json:"at"`
	SLO    string    `json:"slo"`
	Base   string    `json:"base"`
	Status string    `json:"status"` // ok|degraded|alerting|no_data

	Alerting    bool    `json:"alerting"`
	BurnShort   float64 `json:"burn_short"`
	BurnLong    float64 `json:"burn_long"`
	BadShort    float64 `json:"bad_frac_short"`
	BadLong     float64 `json:"bad_frac_long"`
	QShort      float64 `json:"q_short_s"` // observed SLO quantile over the short window
	QLong       float64 `json:"q_long_s"`
	ObsLong     float64 `json:"window_obs"` // completions inside the long window
	AlertsFired int64   `json:"alerts_fired"`

	// Since-start compliance: the same statistics deltaed against the
	// monitor's first snapshot — how much of the overall error budget
	// the run has spent so far, the thing the burn-rate alert is meant
	// to fire ahead of.
	QTotal   float64 `json:"q_total_s"`
	BadTotal float64 `json:"bad_frac_total"`
	ObsTotal float64 `json:"obs_total"`

	Nodes []NodeHealth `json:"nodes"`
}

// histSnap is one timestamped snapshot of the watched histogram family,
// summed across every node label: cumulative bucket counts by le, plus
// the _sum/_count totals. Deltas between two snapshots are themselves a
// valid histogram (cumulative counters only grow), which is what the
// rolling windows are computed from.
type histSnap struct {
	at      time.Time
	count   float64
	sum     float64
	buckets []bucketCum // ascending le, cumulative counts
}

type bucketCum struct{ le, n float64 }

// nodeTrack is the monitor's per-URL memory between polls: the previous
// abort-counter total (for the rate) and its EWMA, plus the last
// verdict so transitions can be traced.
type nodeTrack struct {
	prevAborts float64
	prevAt     time.Time
	havePrev   bool
	ewma       float64
	verdict    string
}

// Monitor polls the cluster's merged view and evaluates the SLO. Create
// with NewMonitor; drive it with Start/Stop (continuous) or Poll
// (one-shot, what experiments and tests use for determinism).
type Monitor struct {
	cfg MonitorConfig

	mu        sync.Mutex
	snaps     []histSnap
	first     histSnap // first-ever snapshot (survives ring trimming)
	haveFirst bool
	tracks    map[string]*nodeTrack
	last      HealthDoc
	fired     int64

	// Alert lifecycle metrics (nil-safe; attached when cfg.Obs is set).
	alertsTotal map[string]*Counter
	alertActive map[string]*Gauge

	stop chan struct{}
	done chan struct{}
}

// NewMonitor returns a Monitor over cfg. It does not scrape until
// Start or Poll.
func NewMonitor(cfg MonitorConfig) *Monitor {
	if cfg.Base == "" {
		cfg.Base = DefaultSLOBase
	}
	if cfg.Period <= 0 {
		cfg.Period = time.Second
	}
	if cfg.SLO.Burn <= 0 {
		cfg.SLO.Burn = DefaultBurn
	}
	if cfg.SaturateFactor <= 0 {
		cfg.SaturateFactor = DefaultSaturateFactor
	}
	if cfg.SaturateMin <= 0 {
		cfg.SaturateMin = DefaultSaturateMin
	}
	if cfg.AbortRateMax <= 0 {
		cfg.AbortRateMax = DefaultAbortRateMax
	}
	if cfg.SendqMax <= 0 {
		cfg.SendqMax = DefaultSendqMax
	}
	m := &Monitor{
		cfg:         cfg,
		tracks:      make(map[string]*nodeTrack),
		alertsTotal: make(map[string]*Counter, len(monSeverities)),
		alertActive: make(map[string]*Gauge, len(monSeverities)),
	}
	for _, sev := range monSeverities {
		c, g := &Counter{}, &Gauge{}
		m.alertsTotal[sev], m.alertActive[sev] = c, g
		cfg.Obs.Attach(fmt.Sprintf("monitor_alerts_total{severity=%q}", sev), c)
		cfg.Obs.Attach(fmt.Sprintf("monitor_alert_active{severity=%q}", sev), g)
	}
	return m
}

// Start launches the polling loop. Stop shuts it down and waits.
func (m *Monitor) Start() {
	m.mu.Lock()
	if m.stop != nil {
		m.mu.Unlock()
		return
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	stop, done := m.stop, m.done
	m.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(m.cfg.Period)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				m.Poll()
			}
		}
	}()
}

// Stop halts the polling loop (no-op if not started).
func (m *Monitor) Stop() {
	m.mu.Lock()
	stop, done := m.stop, m.done
	m.stop, m.done = nil, nil
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Last returns the most recent health document (zero At if none yet).
func (m *Monitor) Last() HealthDoc {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.last
}

// Poll scrapes once, folds the result into the rolling windows, and
// returns the fresh health document. Safe to call concurrently with a
// running loop; also the deterministic entry point for tests and
// experiments that drive the monitor by hand.
func (m *Monitor) Poll() HealthDoc {
	v, err := AggregateOpts(m.cfg.URLs, AggOptions{Timeout: m.cfg.Timeout, MetricsOnly: true})
	m.mu.Lock()
	defer m.mu.Unlock()
	doc := HealthDoc{SLO: m.cfg.SLO.String(), Base: m.cfg.Base}
	if err != nil {
		// Whole cluster dark: degrade, keep the rolling state.
		doc.At = time.Now()
		doc.Status = "degraded"
		for _, url := range m.cfg.URLs {
			doc.Nodes = append(doc.Nodes, NodeHealth{URL: url, Verdict: "unreachable", Err: err.Error()})
		}
		doc.Alerting = m.last.Alerting
		doc.AlertsFired = m.fired
		m.alertActive["unreachable"].Set(int64(len(m.cfg.URLs)))
		m.last = doc
		return doc
	}
	doc.At = v.At

	// Fold this scrape's histogram state into the snapshot ring.
	snap := extractHistSnap(v, m.cfg.Base)
	snap.at = v.At
	if !m.haveFirst {
		m.first, m.haveFirst = snap, true
	}
	m.snaps = append(m.snaps, snap)
	m.trimSnaps(v.At)

	// Multi-window burn rates against the objective.
	cur := m.snaps[len(m.snaps)-1]
	sOld, sOK := m.windowStart(cur.at, m.cfg.SLO.Short)
	lOld, lOK := m.windowStart(cur.at, m.cfg.SLO.Long)
	budget := 1 - m.cfg.SLO.Quantile
	if sOK {
		doc.BadShort = deltaBadFrac(cur, sOld, m.cfg.SLO.Threshold)
		doc.BurnShort = doc.BadShort / budget
		doc.QShort = deltaQuantile(cur, sOld, m.cfg.SLO.Quantile)
	}
	if lOK {
		doc.BadLong = deltaBadFrac(cur, lOld, m.cfg.SLO.Threshold)
		doc.BurnLong = doc.BadLong / budget
		doc.QLong = deltaQuantile(cur, lOld, m.cfg.SLO.Quantile)
		doc.ObsLong = cur.count - lOld.count
	}
	if m.haveFirst {
		doc.ObsTotal = cur.count - m.first.count
		doc.BadTotal = deltaBadFrac(cur, m.first, m.cfg.SLO.Threshold)
		doc.QTotal = deltaQuantile(cur, m.first, m.cfg.SLO.Quantile)
	}

	wasAlerting := m.last.Alerting
	doc.Alerting = sOK && lOK &&
		doc.BurnShort >= m.cfg.SLO.Burn && doc.BurnLong >= m.cfg.SLO.Burn
	if doc.Alerting && !wasAlerting {
		m.fired++
		m.alertsTotal["slo"].Inc()
		m.cfg.Tracer.Record(-1, "slo_alert", fmt.Sprintf(
			"slo=%q burn_short=%.2f burn_long=%.2f q_short=%.4fs",
			m.cfg.SLO, doc.BurnShort, doc.BurnLong, doc.QShort))
	} else if !doc.Alerting && wasAlerting {
		m.cfg.Tracer.Record(-1, "slo_clear", fmt.Sprintf(
			"burn_short=%.2f burn_long=%.2f", doc.BurnShort, doc.BurnLong))
	}
	doc.AlertsFired = m.fired

	// Per-node verdicts.
	_, meanLoad, _, _ := v.Dist(LoadGaugeBase)
	degraded := false
	for i := range v.Nodes {
		n := &v.Nodes[i]
		nh := NodeHealth{
			URL:      n.URL,
			OK:       n.Err == nil,
			ScrapeMS: float64(n.Latency) / float64(time.Millisecond),
		}
		tr := m.tracks[n.URL]
		if tr == nil {
			tr = &nodeTrack{}
			m.tracks[n.URL] = tr
		}
		if n.Err != nil {
			nh.Err = n.Err.Error()
			nh.Verdict = "unreachable"
			nh.AbortEWMA = tr.ewma
			degraded = true
		} else {
			nh.Load = maxMetric(n.Metrics, LoadGaugeBase)
			nh.Sendq = sumMetric(n.Metrics, "wire_sendq_depth")
			aborts := sumMetric(n.Metrics, "cluster_aborts_total")
			if tr.havePrev {
				if dt := v.At.Sub(tr.prevAt).Seconds(); dt > 0 {
					rate := (aborts - tr.prevAborts) / dt
					if rate < 0 {
						rate = 0 // counter reset (node restart)
					}
					tr.ewma = abortEWMAAlpha*rate + (1-abortEWMAAlpha)*tr.ewma
				}
			}
			tr.prevAborts, tr.prevAt, tr.havePrev = aborts, v.At, true
			nh.AbortEWMA = tr.ewma
			switch {
			case nh.Load >= m.cfg.SaturateMin && meanLoad > 0 && nh.Load >= m.cfg.SaturateFactor*meanLoad:
				nh.Verdict = "saturated"
			case nh.AbortEWMA > m.cfg.AbortRateMax || nh.Sendq > m.cfg.SendqMax:
				nh.Verdict = "degraded"
				degraded = true
			default:
				nh.Verdict = "healthy"
			}
		}
		if tr.verdict != nh.Verdict {
			m.cfg.Tracer.Record(-1, "node_verdict", fmt.Sprintf(
				"url=%s verdict=%s was=%s load=%g sendq=%g abort_ewma=%.2f",
				nh.URL, nh.Verdict, tr.verdict, nh.Load, nh.Sendq, nh.AbortEWMA))
			if c := m.alertsTotal[nh.Verdict]; c != nil { // degraded|saturated|unreachable
				c.Inc()
			}
			tr.verdict = nh.Verdict
		}
		doc.Nodes = append(doc.Nodes, nh)
	}

	// Alert-state gauges reflect this poll.
	active := map[string]int64{"slo": 0}
	if doc.Alerting {
		active["slo"] = 1
	}
	for _, nh := range doc.Nodes {
		active[nh.Verdict]++
	}
	for _, sev := range monSeverities {
		m.alertActive[sev].Set(active[sev])
	}

	switch {
	case doc.Alerting:
		doc.Status = "alerting"
	case degraded:
		doc.Status = "degraded"
	case !sOK || !lOK:
		doc.Status = "no_data"
	default:
		doc.Status = "ok"
	}
	m.last = doc
	if doc.Alerting && !wasAlerting && m.cfg.OnAlert != nil {
		// Own goroutine: Poll holds m.mu and the hook may block (it
		// typically triggers a flight-recorder snapshot to disk).
		go m.cfg.OnAlert(doc)
	}
	return doc
}

// Handler serves the latest health document as JSON — the /health
// endpoint. If the monitor has never polled (no Start loop, no manual
// Poll), the first request triggers one synchronously.
//
// The status code is the machine-readable verdict for probes that never
// parse the body: 503 while the SLO burn-rate alert is firing or any
// node is unreachable, 200 otherwise (including "degraded" — a degraded
// cluster is still serving). The JSON document is identical either way.
func (m *Monitor) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		doc := m.Last()
		if doc.At.IsZero() {
			doc = m.Poll()
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if unhealthy(doc) {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	}
}

// unhealthy decides the /health status code: alerting, or any upstream
// unreachable, means a probe should see 503.
func unhealthy(doc HealthDoc) bool {
	if doc.Alerting {
		return true
	}
	for _, n := range doc.Nodes {
		if n.Verdict == "unreachable" {
			return true
		}
	}
	return false
}

// trimSnaps drops snapshots that fell out of the long window (plus one
// period of slack so the window-start lookup always has a bracket).
func (m *Monitor) trimSnaps(now time.Time) {
	horizon := now.Add(-m.cfg.SLO.Long - 2*m.cfg.Period)
	i := 0
	for i < len(m.snaps)-1 && m.snaps[i+1].at.Before(horizon) {
		i++
	}
	m.snaps = m.snaps[i:]
}

// windowStart returns the snapshot to delta against for a window ending
// at `end`: the newest snapshot at or before end−window, or the oldest
// retained snapshot while the ring is still filling. ok is false until
// at least two snapshots exist.
func (m *Monitor) windowStart(end time.Time, window time.Duration) (histSnap, bool) {
	if len(m.snaps) < 2 {
		return histSnap{}, false
	}
	cut := end.Add(-window)
	for i := len(m.snaps) - 2; i >= 0; i-- {
		if !m.snaps[i].at.After(cut) {
			return m.snaps[i], true
		}
	}
	return m.snaps[0], true
}

// extractHistSnap sums one histogram family's cumulative exposition
// lines across all node labels in the merged view.
func extractHistSnap(v *AggView, base string) histSnap {
	var s histSnap
	byLE := make(map[float64]float64)
	for name, val := range v.Metrics {
		b := baseName(name)
		switch b {
		case base + "_count":
			s.count += val
		case base + "_sum":
			s.sum += val
		case base + "_bucket":
			for _, part := range splitLabels(labelPart(name)) {
				k, raw, ok := strings.Cut(part, "=")
				if !ok || k != "le" {
					continue
				}
				le, err := parseLE(strings.Trim(raw, `"`))
				if err == nil {
					byLE[le] += val
				}
			}
		}
	}
	s.buckets = make([]bucketCum, 0, len(byLE))
	for le, n := range byLE {
		s.buckets = append(s.buckets, bucketCum{le: le, n: n})
	}
	sort.Slice(s.buckets, func(a, b int) bool { return s.buckets[a].le < s.buckets[b].le })
	return s
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// cumAt linearly interpolates a snapshot's cumulative count at value x.
// Buckets are (lower, le] ranges; mass inside the bucket containing x
// is spread uniformly, the standard Prometheus histogram_quantile
// assumption in reverse.
func cumAt(s histSnap, x float64) float64 {
	prevLE, prevN := 0.0, 0.0
	for _, b := range s.buckets {
		if x <= b.le {
			width := b.le - prevLE
			if width <= 0 || math.IsInf(b.le, 1) { // degenerate or +Inf bucket
				return prevN
			}
			return prevN + (b.n-prevN)*(x-prevLE)/width
		}
		prevLE, prevN = b.le, b.n
	}
	return s.count
}

// deltaBadFrac is the fraction of completions between old and cur that
// exceeded the threshold.
func deltaBadFrac(cur, old histSnap, threshold float64) float64 {
	total := cur.count - old.count
	if total <= 0 {
		return 0
	}
	good := cumAt(cur, threshold) - cumAt(old, threshold)
	bad := total - good
	if bad < 0 {
		bad = 0
	}
	return bad / total
}

// deltaQuantile inverts the delta histogram between old and cur at q
// (0 when the window is empty).
func deltaQuantile(cur, old histSnap, q float64) float64 {
	total := cur.count - old.count
	if total <= 0 {
		return 0
	}
	rank := q * total
	prevLE, prevD := 0.0, 0.0
	for i := range cur.buckets {
		d := cur.buckets[i].n
		// Match the same le in old (bucket sets are identical in
		// practice; missing means zero).
		for _, ob := range old.buckets {
			if ob.le == cur.buckets[i].le {
				d -= ob.n
				break
			}
		}
		if d >= rank {
			le := cur.buckets[i].le
			if math.IsInf(le, 1) { // +Inf bucket: clamp to the last finite bound
				return prevLE
			}
			if d == prevD {
				return le
			}
			return prevLE + (le-prevLE)*(rank-prevD)/(d-prevD)
		}
		if !math.IsInf(cur.buckets[i].le, 1) {
			prevLE = cur.buckets[i].le
		}
		prevD = d
	}
	return prevLE
}

// maxMetric returns the largest value among a node's metric lines with
// the given base name (0 if none).
func maxMetric(metrics map[string]float64, base string) float64 {
	best := 0.0
	for name, val := range metrics {
		if baseName(name) == base && val > best {
			best = val
		}
	}
	return best
}

// sumMetric sums a node's metric lines with the given base name.
func sumMetric(metrics map[string]float64, base string) float64 {
	sum := 0.0
	for name, val := range metrics {
		if baseName(name) == base {
			sum += val
		}
	}
	return sum
}
