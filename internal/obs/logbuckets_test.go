package obs

import (
	"math"
	"sort"
	"testing"

	"lmbalance/internal/rng"
)

func TestLogBucketsShape(t *testing.T) {
	b := LogBuckets(1e-6, 10, 10)
	if b[0] != 1e-6 {
		t.Fatalf("first bound %g, want 1e-6", b[0])
	}
	if last := b[len(b)-1]; last < 10 {
		t.Fatalf("last bound %g does not cover hi=10", last)
	}
	ratio := math.Pow(10, 0.1)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %g <= %g", i, b[i], b[i-1])
		}
		if r := b[i] / b[i-1]; math.Abs(r-ratio) > 1e-9 {
			t.Fatalf("bucket ratio at %d is %g, want %g", i, r, ratio)
		}
	}
	// 7 decades at 10 per decade: 71 bounds.
	if len(b) != 71 {
		t.Fatalf("got %d bounds, want 71", len(b))
	}
}

func TestLogBucketsPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"lo zero":     func() { LogBuckets(0, 1, 10) },
		"hi below lo": func() { LogBuckets(1, 0.5, 10) },
		"perDecade 0": func() { LogBuckets(1e-6, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// exactQuantile returns the empirical q-quantile of sorted samples (the
// same nearest-rank-with-interpolation convention does not matter at
// the tolerances tested; rank-ceiling is conservative).
func exactQuantile(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestLogBucketsQuantileErrorBound is the satellite contract: with
// perDecade log-spaced buckets, Quantile's relative error is bounded by
// one bucket's relative width, 10^(1/perDecade)−1, for any sample
// distribution inside the bucket range — in particular for latency-like
// data spanning µs→s, where the old doubling buckets could be off by
// the width of a whole octave.
func TestLogBucketsQuantileErrorBound(t *testing.T) {
	const perDecade = 10
	bound := math.Pow(10, 1.0/perDecade) - 1 // ≈ 0.259
	r := rng.New(42)
	// Log-uniform sojourns over 20 µs … 2 s — every decade populated —
	// plus a heavy cluster near 1 ms so the quantile ranks are not
	// spread evenly across buckets.
	var samples []float64
	for i := 0; i < 20000; i++ {
		e := r.FloatRange(math.Log(20e-6), math.Log(2.0))
		samples = append(samples, math.Exp(e))
	}
	for i := 0; i < 20000; i++ {
		samples = append(samples, 1e-3*r.FloatRange(0.5, 1.5))
	}
	h := NewHistogram(LogBuckets(1e-6, 10, perDecade))
	for _, v := range samples {
		h.Observe(v)
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := exactQuantile(sorted, q)
		got := h.Quantile(q)
		rel := math.Abs(got-want) / want
		if rel > bound {
			t.Errorf("q=%g: histogram %.6g vs exact %.6g, rel error %.3f > bound %.3f",
				q, got, want, rel, bound)
		}
	}
}

// TestSojournBucketsCoverMicrosToSeconds pins the default scheme: a µs
// observation and a multi-second observation land in distinct interior
// buckets (not the overflow), so sojourn p99s are never crushed into
// one bucket across the µs→s range.
func TestSojournBucketsCoverMicrosToSeconds(t *testing.T) {
	h := NewHistogram(SojournBuckets)
	h.Observe(2e-6)
	h.Observe(3.5)
	bounds, counts := h.Buckets()
	if counts[len(counts)-1] != 0 {
		t.Fatalf("3.5s landed in the overflow bucket (bounds top out at %g)", bounds[len(bounds)-1])
	}
	var occupied []int
	for i, c := range counts {
		if c > 0 {
			occupied = append(occupied, i)
		}
	}
	if len(occupied) != 2 {
		t.Fatalf("expected 2 occupied buckets, got %v", occupied)
	}
}
