package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func timeZero() time.Time { return time.Time{} }

func TestNilRegistryIsNoOp(t *testing.T) {
	var reg *Registry
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h", LatencyBuckets)
	tr := reg.Tracer()
	if c != nil || g != nil || h != nil || tr != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// Every operation on the nil handles must be safe and inert.
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(1.5)
	h.ObserveSince(timeZero())
	tr.Record(1, "x", "y")
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.Len() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if h.Mean() != 0 || h.Std() != 0 || h.VD() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram summaries must be zero")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote prometheus output: %q", buf.String())
	}
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "{}" {
		t.Fatalf("nil registry JSON = %q, want {}", buf.String())
	}
	reg.Attach("x", new(Counter))
	reg.SetTracer(NewTracer(8))
}

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if c2 := reg.Counter("ops_total"); c2 != c {
		t.Fatal("same name must return the same counter")
	}
	g := reg.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	// A name registered as one kind does not alias another kind.
	if reg.Gauge("ops_total") != nil {
		t.Fatal("kind mismatch must yield a nil (no-op) handle")
	}
	if reg.Counter("depth") != nil {
		t.Fatal("kind mismatch must yield a nil (no-op) handle")
	}
}

func TestAttachPublishesExternalMetric(t *testing.T) {
	reg := NewRegistry()
	var own Counter // zero value usable standalone
	own.Add(9)
	reg.Attach("external_total", &own)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "external_total 9") {
		t.Fatalf("attached counter missing from exposition:\n%s", buf.String())
	}
	// First registration wins.
	other := new(Counter)
	reg.Attach("external_total", other)
	if reg.Counter("external_total") != &own {
		t.Fatal("second Attach must not replace the first metric")
	}
}

func TestHistogramBucketsAndMoments(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	_, counts := h.Buckets()
	want := []int64{2, 1, 1, 1} // ≤1: {0.5,1}; ≤2: {1.5}; ≤4: {3}; +Inf: {100}
	for i, c := range counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, c, want[i], counts)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	wantMean := (0.5 + 1 + 1.5 + 3 + 100) / 5
	if math.Abs(h.Mean()-wantMean) > 1e-9 {
		t.Fatalf("mean = %v, want %v", h.Mean(), wantMean)
	}
	if h.Std() <= 0 || h.VD() <= 0 {
		t.Fatalf("std/vd must be positive: %v %v", h.Std(), h.VD())
	}
	// Constant series: std clamps to exactly 0, VD 0.
	hc := NewHistogram(LoadBuckets)
	for i := 0; i < 100; i++ {
		hc.Observe(3)
	}
	if hc.Std() != 0 || hc.VD() != 0 {
		t.Fatalf("constant series std=%v vd=%v, want 0", hc.Std(), hc.VD())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in bucket (1,2]
	}
	q := h.Quantile(0.5)
	if q < 1 || q > 2 {
		t.Fatalf("median %v outside its bucket (1,2]", q)
	}
	h.Observe(1e9) // overflow bucket
	if q := h.Quantile(1); q != 8 {
		t.Fatalf("overflow quantile reports its lower bound: got %v, want 8", q)
	}
}

func TestVDMatchesDefinition(t *testing.T) {
	// VD from online moments must match the direct computation.
	vals := []float64{3, 7, 1, 9, 4, 4, 6, 2}
	h := NewHistogram(LoadBuckets)
	var sum, sumsq float64
	for _, v := range vals {
		h.Observe(v)
		sum += v
		sumsq += v * v
	}
	n := float64(len(vals))
	mean := sum / n
	want := math.Sqrt(sumsq/n-mean*mean) / mean
	if math.Abs(h.VD()-want) > 1e-12 {
		t.Fatalf("VD = %v, want %v", h.VD(), want)
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`aborts_total{reason="timeout"}`).Add(3)
	reg.Counter(`aborts_total{reason="peer_frozen"}`).Add(5)
	reg.Gauge("queue_depth").Set(2)
	h := reg.Histogram(`phase_seconds{phase="reply"}`, []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE aborts_total counter",
		`aborts_total{reason="timeout"} 3`,
		`aborts_total{reason="peer_frozen"} 5`,
		"# TYPE queue_depth gauge",
		"queue_depth 2",
		"# TYPE phase_seconds histogram",
		`phase_seconds_bucket{phase="reply",le="0.001"} 1`,
		`phase_seconds_bucket{phase="reply",le="+Inf"} 2`,
		`phase_seconds_count{phase="reply"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE header per base name, even with two labeled series.
	if strings.Count(out, "# TYPE aborts_total") != 1 {
		t.Fatalf("duplicated TYPE header:\n%s", out)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total").Add(2)
	reg.Histogram("lat", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc["a_total"].(float64) != 2 {
		t.Fatalf("a_total = %v", doc["a_total"])
	}
	hist := doc["lat"].(map[string]any)
	if hist["count"].(float64) != 1 {
		t.Fatalf("histogram count = %v", hist["count"])
	}
}

func TestTracerRingAndJSONL(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Record(i, "ev", "")
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want capacity 4", tr.Len())
	}
	if tr.Total() != 6 {
		t.Fatalf("total = %d, want 6", tr.Total())
	}
	evs := tr.Events()
	for i, ev := range evs {
		if ev.Node != i+2 { // oldest two overwritten
			t.Fatalf("event %d from node %d, want %d", i, ev.Node, i+2)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
		lines++
	}
	if lines != 4 {
		t.Fatalf("JSONL lines = %d, want 4", lines)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := reg.Counter("shared_total")
			h := reg.Histogram("shared_hist", LatencyBuckets)
			tr := reg.Tracer()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i))
				if i%100 == 0 {
					tr.Record(g, "tick", "")
				}
			}
		}(g)
	}
	// Concurrent exports must be safe too.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			_ = reg.WritePrometheus(&buf)
			_ = reg.WriteJSON(&buf)
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared_total").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := reg.Histogram("shared_hist", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}
