package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultTraceCapacity is the ring capacity Registry.Tracer uses when
// the caller did not seed one explicitly.
const DefaultTraceCapacity = 4096

// Event is one traced protocol event. Op, when nonzero, is the
// balancing-operation id the event belongs to: the initiator mints it,
// the wire carries it (codec v2), and every process touched by the
// operation tags its events with it — so one operation's cross-node
// timeline can be stitched back together (see ByOp and obs.Aggregate).
type Event struct {
	At     time.Time `json:"at"`
	Node   int       `json:"node"`
	Op     uint64    `json:"op,omitempty"`
	Kind   string    `json:"kind"`
	Detail string    `json:"detail,omitempty"`
}

// Tracer is a bounded ring buffer of recent events: recording never
// blocks progress on allocation or I/O, old events are overwritten once
// the seeded capacity is full, and the buffer can be exported as JSONL
// at any time. A nil tracer no-ops, which is the disabled path.
type Tracer struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	full  bool
	total uint64
	// dropped counts ring overwrites: events evicted before anyone
	// exported them. Registry.Tracer surfaces it as trace_dropped_total
	// so /metrics shows when the ring is undersized for the event rate.
	dropped Counter
}

// NewTracer returns a tracer holding the last capacity events
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Record appends one event, stamping it with the current time.
func (t *Tracer) Record(node int, kind, detail string) {
	if t == nil {
		return
	}
	t.RecordEvent(Event{At: time.Now(), Node: node, Kind: kind, Detail: detail})
}

// RecordOp appends one event tagged with a balancing-operation id.
func (t *Tracer) RecordOp(node int, op uint64, kind, detail string) {
	if t == nil {
		return
	}
	t.RecordEvent(Event{At: time.Now(), Node: node, Op: op, Kind: kind, Detail: detail})
}

// RecordEvent appends a prepared event (a zero At is stamped now).
func (t *Tracer) RecordEvent(ev Event) {
	if t == nil {
		return
	}
	if ev.At.IsZero() {
		ev.At = time.Now()
	}
	t.mu.Lock()
	if t.full { // the slot still holds an event nobody drained
		t.dropped.Inc()
	}
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.total++
	t.mu.Unlock()
}

// Dropped returns how many events the ring has overwritten.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Value()
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.buf)
	}
	return t.next
}

// Total returns the number of events ever recorded (buffered or
// already overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Events returns the buffered events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Event(nil), t.buf[:t.next]...)
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// ByOp returns the buffered events carrying the given operation id,
// oldest first. The zero id never matches (it is the "no operation"
// tag), so ByOp(0) returns nil.
func (t *Tracer) ByOp(op uint64) []Event {
	if t == nil || op == 0 {
		return nil
	}
	var out []Event
	for _, ev := range t.Events() {
		if ev.Op == op {
			out = append(out, ev)
		}
	}
	return out
}

// WriteJSONL writes the buffered events oldest-first, one JSON object
// per line. A nil tracer writes nothing.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return writeJSONL(w, t.Events())
}

// WriteJSONLOp writes only the events of one operation id as JSONL.
func (t *Tracer) WriteJSONLOp(w io.Writer, op uint64) error {
	return writeJSONL(w, t.ByOp(op))
}

func writeJSONL(w io.Writer, evs []Event) error {
	enc := json.NewEncoder(w) // Encode appends '\n' per call: JSONL
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
