package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultTraceCapacity is the ring capacity Registry.Tracer uses when
// the caller did not seed one explicitly.
const DefaultTraceCapacity = 4096

// Event is one traced protocol event.
type Event struct {
	At     time.Time `json:"at"`
	Node   int       `json:"node"`
	Kind   string    `json:"kind"`
	Detail string    `json:"detail,omitempty"`
}

// Tracer is a bounded ring buffer of recent events: recording never
// blocks progress on allocation or I/O, old events are overwritten once
// the seeded capacity is full, and the buffer can be exported as JSONL
// at any time. A nil tracer no-ops, which is the disabled path.
type Tracer struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	full  bool
	total uint64
}

// NewTracer returns a tracer holding the last capacity events
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Record appends one event, stamping it with the current time.
func (t *Tracer) Record(node int, kind, detail string) {
	if t == nil {
		return
	}
	t.RecordEvent(Event{At: time.Now(), Node: node, Kind: kind, Detail: detail})
}

// RecordEvent appends a prepared event (a zero At is stamped now).
func (t *Tracer) RecordEvent(ev Event) {
	if t == nil {
		return
	}
	if ev.At.IsZero() {
		ev.At = time.Now()
	}
	t.mu.Lock()
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.total++
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.buf)
	}
	return t.next
}

// Total returns the number of events ever recorded (buffered or
// already overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Events returns the buffered events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Event(nil), t.buf[:t.next]...)
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// WriteJSONL writes the buffered events oldest-first, one JSON object
// per line. A nil tracer writes nothing.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w) // Encode appends '\n' per call: JSONL
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
