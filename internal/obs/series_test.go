package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestRecorderColumnsAndSample(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("load")
	c := reg.Counter("ops_total")
	h := reg.Histogram("lat", []float64{1, 10})

	rec := NewRecorder(4).
		GaugeColumn("load", g).
		CounterColumn("ops_total", c).
		HistogramColumns("lat", h)

	wantCols := []string{"load", "ops_total", "lat_mean", "lat_std", "lat_vd"}
	if got := rec.Columns(); len(got) != len(wantCols) {
		t.Fatalf("Columns = %v, want %v", got, wantCols)
	} else {
		for i := range wantCols {
			if got[i] != wantCols[i] {
				t.Fatalf("Columns = %v, want %v", got, wantCols)
			}
		}
	}

	g.Set(5)
	c.Add(3)
	h.Observe(2)
	h.Observe(4)
	rec.Sample()
	g.Set(9)
	rec.Sample()

	if rec.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rec.Len())
	}
	s := rec.Samples()
	if len(s) != 2 {
		t.Fatalf("Samples = %d rows", len(s))
	}
	if s[0].V[0] != 5 || s[1].V[0] != 9 {
		t.Fatalf("gauge column = %v / %v, want 5 / 9", s[0].V[0], s[1].V[0])
	}
	if s[0].V[1] != 3 {
		t.Fatalf("counter column = %v, want 3", s[0].V[1])
	}
	if s[0].V[2] != 3 { // mean of {2,4}
		t.Fatalf("lat_mean = %v, want 3", s[0].V[2])
	}
	if s[0].AtUS == 0 || s[1].AtUS < s[0].AtUS {
		t.Fatalf("timestamps not monotone: %d then %d", s[0].AtUS, s[1].AtUS)
	}
}

func TestRecorderRateColumn(t *testing.T) {
	var v float64
	rec := NewRecorder(8).RateColumn("rate", func() float64 { return v })
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)

	v = 10
	rec.sampleAt(base) // first sample: no baseline → 0
	v = 30
	rec.sampleAt(base.Add(2 * time.Second)) // +20 over 2 s → 10/s
	v = 30
	rec.sampleAt(base.Add(3 * time.Second)) // flat → 0/s

	s := rec.Samples()
	if s[0].V[0] != 0 || s[1].V[0] != 10 || s[2].V[0] != 0 {
		t.Fatalf("rate column = %v %v %v, want 0 10 0", s[0].V[0], s[1].V[0], s[2].V[0])
	}
}

// TestRecorderRingWraparound overfills the ring and checks the survivors
// are exactly the newest samples, oldest first.
func TestRecorderRingWraparound(t *testing.T) {
	var v float64
	rec := NewRecorder(4).Column("v", func() float64 { return v })
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		v = float64(i)
		rec.sampleAt(base.Add(time.Duration(i) * time.Second))
	}
	if rec.Len() != 4 {
		t.Fatalf("Len = %d, want 4", rec.Len())
	}
	s := rec.Samples()
	for i, want := range []float64{6, 7, 8, 9} {
		if s[i].V[0] != want {
			t.Fatalf("sample %d = %v, want %v (all: %+v)", i, s[i].V[0], want, s)
		}
	}
}

// Declaring a column after sampling resets the ring: rows of different
// widths cannot coexist.
func TestRecorderColumnChangeResets(t *testing.T) {
	rec := NewRecorder(4).Column("a", func() float64 { return 1 })
	rec.Sample()
	rec.Sample()
	rec.Column("b", func() float64 { return 2 })
	if rec.Len() != 0 {
		t.Fatalf("Len after column change = %d, want 0", rec.Len())
	}
	rec.Sample()
	s := rec.Samples()
	if len(s) != 1 || len(s[0].V) != 2 || s[0].V[1] != 2 {
		t.Fatalf("post-reset samples = %+v", s)
	}
}

func TestRecorderStartStop(t *testing.T) {
	var mu sync.Mutex
	v := 0.0
	rec := NewRecorder(64).Column("v", func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return v
	})
	rec.Start(time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for rec.Len() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if rec.Len() < 3 {
		t.Fatalf("background sampler recorded %d samples", rec.Len())
	}
	rec.Stop()
	rec.Stop() // idempotent
	n := rec.Len()
	time.Sleep(20 * time.Millisecond)
	if rec.Len() != n {
		t.Fatalf("recorder kept sampling after Stop: %d → %d", n, rec.Len())
	}
	// Restart replaces the schedule rather than stacking goroutines.
	rec.Start(time.Millisecond)
	rec.Start(time.Millisecond)
	rec.Stop()
}

func TestSeriesDataJSON(t *testing.T) {
	var nilRec *Recorder
	var buf bytes.Buffer
	if err := nilRec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var d SeriesData
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("nil recorder JSON invalid: %v\n%s", err, buf.String())
	}
	if d.Columns == nil || d.Samples == nil {
		t.Fatalf("nil recorder should marshal empty arrays, got %s", buf.String())
	}

	rec := NewRecorder(4).Column("x", func() float64 { return 1.5 })
	rec.Sample()
	buf.Reset()
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Columns) != 1 || d.Columns[0] != "x" || len(d.Samples) != 1 || d.Samples[0].V[0] != 1.5 {
		t.Fatalf("series JSON = %s", buf.String())
	}

	// Nil-receiver no-ops across the rest of the surface.
	nilRec.Sample()
	nilRec.Start(time.Millisecond)
	nilRec.Stop()
	if nilRec.Len() != 0 || nilRec.Columns() != nil || nilRec.Samples() != nil {
		t.Fatal("nil recorder should be inert")
	}
}

// Registry plumbing: SetRecorder is what ServeDebug's /series reads.
func TestRegistryRecorderAttach(t *testing.T) {
	reg := NewRegistry()
	if reg.Recorder() != nil {
		t.Fatal("Recorder should not be auto-created")
	}
	rec := NewRecorder(4)
	reg.SetRecorder(rec)
	if reg.Recorder() != rec {
		t.Fatal("SetRecorder/Recorder mismatch")
	}
	var nilReg *Registry
	if nilReg.Recorder() != nil {
		t.Fatal("nil registry Recorder should be nil")
	}
	nilReg.SetRecorder(rec) // must not panic
}
