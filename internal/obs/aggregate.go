package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the multi-node side of the observability layer: an
// aggregator that scrapes every node's debug endpoint (/metrics,
// /series, /trace), merges the per-process views into one cluster-wide
// view — summed counters and histograms, the load distribution and
// global variation density over the per-node load gauges, cross-node
// operation timelines stitched by op id — and can serve the merged view
// on its own debug endpoint (ServeAggregator).

// DefaultScrapeTimeout bounds one upstream HTTP request when AggOptions
// leaves Timeout zero; a dead node must not stall the whole merged view.
const DefaultScrapeTimeout = 3 * time.Second

// AggOptions tune the aggregator. The zero value reproduces the
// defaults (DefaultScrapeTimeout, no extra endpoints).
type AggOptions struct {
	// Timeout bounds each upstream HTTP request (≤0 means
	// DefaultScrapeTimeout). A slow node charges at most this much to
	// the merged view's latency — scrapes run in parallel — and shows
	// up in NodeScrape.Latency either way.
	Timeout time.Duration
	// Extra handlers are mounted on the aggregator's mux by
	// ServeAggregatorOpts under their map key (e.g. "/health" → a
	// Monitor's handler). Reserved paths (/cluster, /metrics, /series,
	// /trace, /healthz) cannot be overridden.
	Extra map[string]http.HandlerFunc
	// MetricsOnly skips the /series and /trace fetches, leaving only
	// the /metrics scrape. High-frequency pollers (the health monitor)
	// set this: serializing a full trace ring per poll is orders of
	// magnitude more expensive than the metrics page and can steal
	// enough CPU to perturb the cluster being watched.
	MetricsOnly bool
}

func (o AggOptions) timeout() time.Duration {
	if o.Timeout <= 0 {
		return DefaultScrapeTimeout
	}
	return o.Timeout
}

// NodeScrape is one upstream's raw scrape. Err is per-node: a dead or
// half-started node degrades the merged view instead of failing it.
// Latency is the wall time of this node's scrape (all endpoints),
// whether or not it succeeded — a slow node is visible, not silent.
type NodeScrape struct {
	URL     string
	Err     error
	Latency time.Duration
	Metrics map[string]float64 // full metric line name → value
	Types   map[string]string  // base name → counter|gauge|histogram
	Series  SeriesData
	Events  []Event
}

// AggView is the merged cluster view Aggregate builds.
type AggView struct {
	// At is the scrape time.
	At time.Time
	// Nodes holds one scrape per URL, same order as the input.
	Nodes []NodeScrape
	// Metrics sums every metric line across nodes by its full name.
	// Counters sum into cluster totals; identically named gauges sum
	// too (per-node gauges carry node labels, so distinct nodes never
	// collide unless they publish the same series — in which case the
	// sum is the cluster-wide value, e.g. sendq depth). Histogram
	// _bucket/_sum/_count lines are cumulative counters, so summing
	// them merges the histograms exactly.
	Metrics map[string]float64
	// Types maps metric base names to their exposition type.
	Types map[string]string
	// Ops holds every traced event that carries an op id, keyed by op
	// and sorted by timestamp — a balancing operation's cross-node
	// timeline.
	Ops map[uint64][]Event
}

// Aggregate scrapes every URL's debug endpoints and merges them with
// default options. It fails only if every node is unreachable; partial
// scrapes are reported per node in Nodes[i].Err.
func Aggregate(urls []string) (*AggView, error) {
	return AggregateOpts(urls, AggOptions{})
}

// AggregateOpts is Aggregate with explicit options (scrape timeout).
func AggregateOpts(urls []string, opts AggOptions) (*AggView, error) {
	v := &AggView{
		At:      time.Now(),
		Nodes:   make([]NodeScrape, len(urls)),
		Metrics: make(map[string]float64),
		Types:   make(map[string]string),
		Ops:     make(map[uint64][]Event),
	}
	timeout := opts.timeout()
	var wg sync.WaitGroup
	for i, url := range urls {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			v.Nodes[i] = scrapeNode(url, timeout, opts.MetricsOnly)
		}(i, url)
	}
	wg.Wait()
	ok := 0
	for i := range v.Nodes {
		n := &v.Nodes[i]
		if n.Err != nil {
			continue
		}
		ok++
		for name, val := range n.Metrics {
			v.Metrics[name] += val
		}
		for base, typ := range n.Types {
			v.Types[base] = typ
		}
		for _, ev := range n.Events {
			if ev.Op != 0 {
				v.Ops[ev.Op] = append(v.Ops[ev.Op], ev)
			}
		}
	}
	if ok == 0 {
		var first error
		for i := range v.Nodes {
			if v.Nodes[i].Err != nil {
				first = v.Nodes[i].Err
				break
			}
		}
		return nil, fmt.Errorf("obs: aggregate: no node of %d reachable: %w", len(urls), first)
	}
	for op := range v.Ops {
		evs := v.Ops[op]
		sort.SliceStable(evs, func(a, b int) bool { return evs[a].At.Before(evs[b].At) })
	}
	return v, nil
}

// scrapeNode fetches one node's /metrics, /series and /trace.
func scrapeNode(url string, timeout time.Duration, metricsOnly bool) (n NodeScrape) {
	n.URL = url
	start := time.Now()
	defer func() { n.Latency = time.Since(start) }()
	client := &http.Client{Timeout: timeout}
	body, err := fetch(client, url+"/metrics")
	if err != nil {
		n.Err = err
		return n
	}
	n.Metrics, n.Types, n.Err = ParsePrometheus(strings.NewReader(body))
	if n.Err != nil || metricsOnly {
		return n
	}
	// /series and /trace are optional views: a node without a recorder
	// or tracer still merges its metrics.
	if body, err := fetch(client, url+"/series"); err == nil {
		_ = json.Unmarshal([]byte(body), &n.Series)
	}
	if body, err := fetch(client, url+"/trace"); err == nil {
		sc := bufio.NewScanner(strings.NewReader(body))
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var ev Event
			if json.Unmarshal([]byte(line), &ev) == nil {
				n.Events = append(n.Events, ev)
			}
		}
	}
	return n
}

func fetch(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("obs: GET %s: status %d", url, resp.StatusCode)
	}
	return string(body), nil
}

// ParsePrometheus parses the text exposition format into metric values
// (full line name → value) and base-name types. It accepts exactly what
// WritePrometheus emits — `name value`, `name{labels} value`, `# TYPE`
// headers — and errors on anything else, which doubles as a conformance
// check of the exporter (see TestPrometheusConformance).
func ParsePrometheus(r io.Reader) (map[string]float64, map[string]string, error) {
	metrics := make(map[string]float64)
	types := make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			// Only "# TYPE <base> <type>" headers are meaningful here;
			// other comments are permitted and skipped.
			if len(fields) == 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					types[fields[2]] = fields[3]
				default:
					return nil, nil, fmt.Errorf("obs: prometheus line %d: unknown type %q", lineNo, fields[3])
				}
			}
			continue
		}
		// Split on the last space: the name may contain spaces only
		// inside label values, which WritePrometheus never emits, but
		// label values may contain '=' and ','.
		cut := strings.LastIndexByte(line, ' ')
		if cut <= 0 {
			return nil, nil, fmt.Errorf("obs: prometheus line %d: no value: %q", lineNo, line)
		}
		name, vals := line[:cut], line[cut+1:]
		if err := checkMetricName(name); err != nil {
			return nil, nil, fmt.Errorf("obs: prometheus line %d: %v", lineNo, err)
		}
		val, err := strconv.ParseFloat(vals, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("obs: prometheus line %d: bad value %q", lineNo, vals)
		}
		if _, dup := metrics[name]; dup {
			return nil, nil, fmt.Errorf("obs: prometheus line %d: duplicate series %q", lineNo, name)
		}
		metrics[name] = val
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return metrics, types, nil
}

// checkMetricName validates `base` or `base{label="v",...}` shape.
func checkMetricName(name string) error {
	base := name
	if i := strings.IndexByte(name, '{'); i >= 0 {
		if !strings.HasSuffix(name, "}") {
			return fmt.Errorf("unbalanced labels in %q", name)
		}
		base = name[:i]
		labels := name[i+1 : len(name)-1]
		if labels == "" {
			return fmt.Errorf("empty label set in %q", name)
		}
		for _, part := range splitLabels(labels) {
			k, v, ok := strings.Cut(part, "=")
			if !ok || k == "" || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return fmt.Errorf("malformed label %q in %q", part, name)
			}
		}
	}
	if base == "" {
		return fmt.Errorf("empty metric name in %q", name)
	}
	for i := 0; i < len(base); i++ {
		c := base[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return fmt.Errorf("invalid metric name %q", base)
		}
	}
	return nil
}

// splitLabels splits a label body on commas that sit outside quoted
// values.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// Value returns a merged metric by its full line name (0 if absent).
func (v *AggView) Value(name string) float64 { return v.Metrics[name] }

// Dist computes the distribution of a per-node gauge family: every
// merged metric whose base name is base (e.g. "cluster_node_load")
// contributes one point. Returns the member count, mean, population
// std, and the paper's variation density std/mean (0 when the mean is
// 0) — the cluster-wide load distribution when applied to the per-node
// load gauges.
func (v *AggView) Dist(base string) (n int, mean, std, vd float64) {
	var sum, sumsq float64
	for name, val := range v.Metrics {
		if baseName(name) != base {
			continue
		}
		n++
		sum += val
		sumsq += val * val
	}
	if n == 0 {
		return 0, 0, 0, 0
	}
	mean = sum / float64(n)
	varr := sumsq/float64(n) - mean*mean
	if varr < 0 {
		varr = 0
	}
	std = math.Sqrt(varr)
	if mean != 0 {
		vd = std / mean
	}
	return n, mean, std, vd
}

// OpIDs returns the stitched operation ids, most events first (ties by
// id) — the interesting ops, the ones with a full cross-node timeline,
// sort to the front.
func (v *AggView) OpIDs() []uint64 {
	out := make([]uint64, 0, len(v.Ops))
	for op := range v.Ops {
		out = append(out, op)
	}
	sort.Slice(out, func(a, b int) bool {
		la, lb := len(v.Ops[out[a]]), len(v.Ops[out[b]])
		if la != lb {
			return la > lb
		}
		return out[a] < out[b]
	})
	return out
}

// AggPoint is one time bucket of a merged cross-node series: the
// distribution over each live node's latest sample in the bucket.
type AggPoint struct {
	AtUS int64   `json:"at_us"`
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	VD   float64 `json:"vd"`
}

// MergeSeries aligns every node's samples of one series column (matched
// by base name, so per-node label decorations like `load{node="3"}`
// all merge into "load") onto a common time grid of the given bucket
// width, and computes the cross-node distribution per bucket. The
// result is the cluster's trajectory — for the load column, the global
// variation density over time.
func (v *AggView) MergeSeries(column string, bucket time.Duration) []AggPoint {
	if bucket <= 0 {
		bucket = 100 * time.Millisecond
	}
	bucketUS := bucket.Microseconds()
	// per bucket: node index → latest value in that bucket
	latest := make(map[int64]map[int]float64)
	for ni := range v.Nodes {
		node := &v.Nodes[ni]
		for ci, name := range node.Series.Columns {
			if baseName(name) != column {
				continue
			}
			for _, s := range node.Series.Samples {
				if ci >= len(s.V) {
					continue
				}
				b := s.AtUS / bucketUS
				m := latest[b]
				if m == nil {
					m = make(map[int]float64)
					latest[b] = m
				}
				m[ni] = s.V[ci] // samples are oldest-first: last write wins
			}
		}
	}
	buckets := make([]int64, 0, len(latest))
	for b := range latest {
		buckets = append(buckets, b)
	}
	sort.Slice(buckets, func(a, b int) bool { return buckets[a] < buckets[b] })
	out := make([]AggPoint, 0, len(buckets))
	for _, b := range buckets {
		var n int
		var sum, sumsq float64
		for _, val := range latest[b] {
			n++
			sum += val
			sumsq += val * val
		}
		p := AggPoint{AtUS: b * bucketUS, N: n}
		p.Mean = sum / float64(n)
		if varr := sumsq/float64(n) - p.Mean*p.Mean; varr > 0 {
			p.Std = math.Sqrt(varr)
		}
		if p.Mean != 0 {
			p.VD = p.Std / p.Mean
		}
		out = append(out, p)
	}
	return out
}

// WritePrometheus re-exports the merged metrics in exposition format,
// with # TYPE headers where the upstream type is known.
func (v *AggView) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(v.Metrics))
	for name := range v.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	lastBase := ""
	for _, name := range names {
		base := baseName(name)
		// Histogram component lines (_bucket/_sum/_count) belong to the
		// base histogram's TYPE header.
		hdr := base
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if t := strings.TrimSuffix(base, suf); t != base && v.Types[t] == "histogram" {
				hdr = t
				break
			}
		}
		if hdr != lastBase {
			if t, ok := v.Types[hdr]; ok {
				if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", hdr, t); err != nil {
					return err
				}
			}
			lastBase = hdr
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", name, v.Metrics[name]); err != nil {
			return err
		}
	}
	return nil
}

// clusterDoc is the /cluster JSON document of the aggregator endpoint.
type clusterDoc struct {
	At    time.Time          `json:"at"`
	Nodes []clusterNodeDoc   `json:"nodes"`
	Load  clusterLoadDoc     `json:"load"`
	Ops   int                `json:"ops"`
	Sums  map[string]float64 `json:"metrics"`
}

type clusterNodeDoc struct {
	URL      string  `json:"url"`
	OK       bool    `json:"ok"`
	ScrapeMS float64 `json:"scrape_ms"`
	Err      string  `json:"err,omitempty"`
}

type clusterLoadDoc struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	VD   float64 `json:"vd"`
}

// LoadGaugeBase is the per-node load gauge family the aggregator's
// /cluster view summarizes (what internal/cluster publishes).
const LoadGaugeBase = "cluster_node_load"

// ServeAggregator starts an aggregator debug server on addr over the
// given upstream node URLs. Every request triggers a fresh parallel
// scrape, so the merged view is always current and the aggregator holds
// no state between requests. Endpoints:
//
//	/cluster   merged JSON: per-node reachability, the cluster load
//	           distribution (mean/std/global VD over cluster_node_load),
//	           stitched op count, and the summed metrics
//	/metrics   the merged metrics re-exported as Prometheus text
//	/series    ?col=<base>&bucket_ms=<w>: the merged cross-node
//	           trajectory of one recorder column (default col=load,
//	           bucket 100 ms) as JSON AggPoints
//	/trace     stitched cross-node op events as JSONL, oldest first;
//	           ?op=<id> keeps one operation
//	/healthz   aggregator liveness plus the upstream URL count
//
// ServeAggregatorOpts additionally mounts opts.Extra handlers (reserved
// paths keep their built-in handler) and scrapes with opts.Timeout.
func ServeAggregator(addr string, urls []string) (*DebugServer, error) {
	return ServeAggregatorOpts(addr, urls, AggOptions{})
}

// ServeAggregatorOpts is ServeAggregator with explicit options.
func ServeAggregatorOpts(addr string, urls []string, opts AggOptions) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: aggregator listen %s: %w", addr, err)
	}
	s := &DebugServer{ln: ln, served: make(chan struct{})}
	mux := http.NewServeMux()
	reserved := map[string]bool{"/healthz": true, "/cluster": true, "/metrics": true, "/series": true, "/trace": true}
	for path, h := range opts.Extra {
		if h == nil || reserved[path] {
			continue
		}
		mux.HandleFunc(path, h)
	}
	scrape := func(w http.ResponseWriter) *AggView {
		v, err := AggregateOpts(urls, opts)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return nil
		}
		return v
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok\nrole=aggregator\nupstreams=%d\n", len(urls))
	})
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, _ *http.Request) {
		v := scrape(w)
		if v == nil {
			return
		}
		doc := clusterDoc{At: v.At, Ops: len(v.Ops), Sums: v.Metrics}
		for i := range v.Nodes {
			nd := clusterNodeDoc{
				URL:      v.Nodes[i].URL,
				OK:       v.Nodes[i].Err == nil,
				ScrapeMS: float64(v.Nodes[i].Latency) / float64(time.Millisecond),
			}
			if v.Nodes[i].Err != nil {
				nd.Err = v.Nodes[i].Err.Error()
			}
			doc.Nodes = append(doc.Nodes, nd)
		}
		doc.Load.N, doc.Load.Mean, doc.Load.Std, doc.Load.VD = v.Dist(LoadGaugeBase)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		v := scrape(w)
		if v == nil {
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = v.WritePrometheus(w)
	})
	mux.HandleFunc("/series", func(w http.ResponseWriter, r *http.Request) {
		v := scrape(w)
		if v == nil {
			return
		}
		col := r.URL.Query().Get("col")
		if col == "" {
			col = "load"
		}
		bucket := 100 * time.Millisecond
		if ms := r.URL.Query().Get("bucket_ms"); ms != "" {
			f, err := strconv.ParseFloat(ms, 64)
			if err != nil || f <= 0 {
				http.Error(w, fmt.Sprintf("bad bucket_ms %q", ms), http.StatusBadRequest)
				return
			}
			bucket = time.Duration(f * float64(time.Millisecond))
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		out := v.MergeSeries(col, bucket)
		if out == nil {
			out = []AggPoint{}
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"column": col, "bucket_ms": bucket.Seconds() * 1e3, "points": out})
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		v := scrape(w)
		if v == nil {
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		if q := r.URL.Query().Get("op"); q != "" {
			op, err := strconv.ParseUint(q, 0, 64)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad op %q: %v", q, err), http.StatusBadRequest)
				return
			}
			_ = writeJSONL(w, v.Ops[op])
			return
		}
		var all []Event
		for _, op := range v.OpIDs() {
			all = append(all, v.Ops[op]...)
		}
		sort.SliceStable(all, func(a, b int) bool { return all[a].At.Before(all[b].At) })
		_ = writeJSONL(w, all)
	})
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		defer close(s.served)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}
