package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"
)

// DebugServer is the optional HTTP debug endpoint of a running node or
// cluster process. It serves:
//
//	/metrics      the registry in Prometheus text exposition format
//	/debug/vars   expvar-style JSON (process vars plus the registry)
//	/trace        the tracer's recent events as JSONL; ?op=<id> keeps
//	              only one balancing operation's events (decimal or 0x hex)
//	/series       the attached time-series recorder as JSON
//	/healthz      liveness ("ok", plus any configured identity lines)
//	/debug/pprof  the standard Go profiler endpoints
//
// The server owns its listener and goroutine; Close shuts it down and
// waits, so a stopping node leaks nothing (see TestDebugServerNoLeak).
type DebugServer struct {
	ln     net.Listener
	srv    *http.Server
	served chan struct{}
}

// DebugOptions tunes ServeDebugOpts beyond the registry.
type DebugOptions struct {
	// Health, when non-nil, is queried per /healthz request; its
	// key=value pairs are appended (sorted by key) after the "ok" line,
	// so a probe learns *which* node answered — id, current protocol
	// epoch — not just that something did.
	Health func() map[string]string
	// Extra handlers are mounted under their map key (e.g. "/jobs" →
	// a serve.JourneysHandler, "/health" → a Monitor's handler).
	// Built-in paths cannot be overridden.
	Extra map[string]http.HandlerFunc
}

// ServeDebug starts a debug server on addr (e.g. "127.0.0.1:0") over
// the given registry. A nil registry serves empty metrics — the
// endpoints stay up so probes and dashboards need not care.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	return ServeDebugOpts(addr, reg, DebugOptions{})
}

// ServeDebugOpts is ServeDebug with options (health identity lines).
func ServeDebugOpts(addr string, reg *Registry, opts DebugOptions) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	s := &DebugServer{
		ln:     ln,
		served: make(chan struct{}),
	}
	mux := http.NewServeMux()
	builtin := map[string]bool{
		"/healthz": true, "/metrics": true, "/debug/vars": true,
		"/trace": true, "/series": true, "/debug/pprof/": true,
	}
	for path, h := range opts.Extra {
		if h == nil || builtin[path] {
			continue
		}
		mux.HandleFunc(path, h)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		if opts.Health == nil {
			return
		}
		kv := opts.Health()
		keys := make([]string, 0, len(kv))
		for k := range kv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s=%s\n", k, kv[k])
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		serveVars(w, reg)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if reg == nil {
			return
		}
		if q := r.URL.Query().Get("op"); q != "" {
			op, err := strconv.ParseUint(q, 0, 64)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad op %q: %v", q, err), http.StatusBadRequest)
				return
			}
			_ = reg.Tracer().WriteJSONLOp(w, op)
			return
		}
		_ = reg.Tracer().WriteJSONL(w)
	})
	mux.HandleFunc("/series", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var rec *Recorder
		if reg != nil {
			rec = reg.Recorder()
		}
		_ = rec.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		defer close(s.served)
		_ = s.srv.Serve(ln) // returns on Shutdown/Close
	}()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// URL returns the http base URL of the server.
func (s *DebugServer) URL() string { return "http://" + s.Addr() }

// Close gracefully shuts the server down and waits for its goroutines;
// requests still running after a short grace window are cut off. Safe
// to call more than once.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Stragglers (a running pprof profile) get cut off hard.
		_ = s.srv.Close()
	}
	<-s.served
	return err
}

// serveVars writes the expvar JSON document: every published process
// var (importing expvar gives cmdline and memstats) plus the registry
// under the "metrics" key.
func serveVars(w http.ResponseWriter, reg *Registry) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{")
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if !first {
			fmt.Fprintf(w, ",")
		}
		first = false
		fmt.Fprintf(w, "\n%q: %s", kv.Key, kv.Value)
	})
	if !first {
		fmt.Fprintf(w, ",")
	}
	fmt.Fprintf(w, "\n%q: ", "metrics")
	if err := reg.WriteJSON(w); err != nil {
		return
	}
	fmt.Fprintf(w, "}\n")
}
