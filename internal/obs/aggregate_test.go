package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestPrometheusConformance is the scrape-side conformance check for
// the exporter: a registry with every metric kind (labeled counters,
// gauges, a histogram with its _bucket/_sum/_count expansion) must
// produce text that the strict parser accepts, with values and # TYPE
// headers surviving the round trip.
func TestPrometheusConformance(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`cluster_aborts_total{reason="timeout"}`).Add(7)
	reg.Counter(`cluster_aborts_total{reason="peer_frozen"}`).Add(2)
	reg.Counter("cluster_ops_total").Add(41)
	reg.Gauge(`cluster_node_load{node="3"}`).Set(12)
	h := reg.Histogram(`cluster_phase_seconds{phase="reply"}`, []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	metrics, types, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exporter output failed conformance parse: %v\n%s", err, text)
	}

	for name, want := range map[string]float64{
		`cluster_aborts_total{reason="timeout"}`:     7,
		`cluster_aborts_total{reason="peer_frozen"}`: 2,
		"cluster_ops_total":                          41,
		`cluster_node_load{node="3"}`:                12,
		`cluster_phase_seconds_count{phase="reply"}`: 3,
	} {
		if got := metrics[name]; got != want {
			t.Errorf("parsed %s = %v, want %v", name, got, want)
		}
	}
	// Histogram buckets must be cumulative and capped by +Inf == _count.
	b1 := metrics[`cluster_phase_seconds_bucket{phase="reply",le="0.001"}`]
	b2 := metrics[`cluster_phase_seconds_bucket{phase="reply",le="0.01"}`]
	b3 := metrics[`cluster_phase_seconds_bucket{phase="reply",le="0.1"}`]
	inf := metrics[`cluster_phase_seconds_bucket{phase="reply",le="+Inf"}`]
	if !(b1 <= b2 && b2 <= b3 && b3 <= inf) {
		t.Errorf("buckets not cumulative: %v %v %v %v", b1, b2, b3, inf)
	}
	if b1 != 1 || b3 != 2 || inf != 3 {
		t.Errorf("bucket counts = %v %v inf=%v, want 1 2 3", b1, b3, inf)
	}
	if inf != metrics[`cluster_phase_seconds_count{phase="reply"}`] {
		t.Error("+Inf bucket disagrees with _count")
	}
	sum := metrics[`cluster_phase_seconds_sum{phase="reply"}`]
	if math.Abs(sum-5.0505) > 1e-9 {
		t.Errorf("_sum = %v, want 5.0505", sum)
	}
	for base, want := range map[string]string{
		"cluster_aborts_total":  "counter",
		"cluster_ops_total":     "counter",
		"cluster_node_load":     "gauge",
		"cluster_phase_seconds": "histogram",
	} {
		if types[base] != want {
			t.Errorf("# TYPE %s = %q, want %q", base, types[base], want)
		}
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"name_only\n",
		"bad name 1\n",
		"name notanumber\n",
		"dup 1\ndup 2\n",
		`unbalanced{a="b" 1` + "\n",
		`x{} 1` + "\n",
		`x{a=b} 1` + "\n",
		"# TYPE x bogus\n",
		"9leading 1\n",
	} {
		if _, _, err := ParsePrometheus(strings.NewReader(bad)); err == nil {
			t.Errorf("ParsePrometheus accepted %q", bad)
		}
	}
	// Comments, blank lines and exotic-but-legal values are fine.
	ok := "# HELP x something\n\n# TYPE x counter\nx 1e9\ny{a=\"with,comma\",b=\"e=mc2\"} -0.5\n"
	m, types, err := ParsePrometheus(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("ParsePrometheus rejected valid input: %v", err)
	}
	if m["x"] != 1e9 || m[`y{a="with,comma",b="e=mc2"}`] != -0.5 || types["x"] != "counter" {
		t.Fatalf("parsed = %v types = %v", m, types)
	}
}

// newScrapeableNode builds a registry resembling one cluster node's and
// serves it, returning the server plus its registry.
func newScrapeableNode(t *testing.T, id int, load int64, gen, con int64) (*DebugServer, *Registry) {
	t.Helper()
	reg := NewRegistry()
	reg.Gauge(fmt.Sprintf(`cluster_node_load{node="%d"}`, id)).Set(load)
	reg.Counter(fmt.Sprintf(`cluster_node_generated_total{node="%d"}`, id)).Add(gen)
	reg.Counter(fmt.Sprintf(`cluster_node_consumed_total{node="%d"}`, id)).Add(con)
	reg.Counter("cluster_initiations_total").Add(int64(id + 1))
	rec := NewRecorder(32).Column(fmt.Sprintf(`load{node="%d"}`, id), func() float64 {
		return float64(load)
	})
	rec.Sample()
	reg.SetRecorder(rec)
	s, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, reg
}

func TestAggregateMergesNodes(t *testing.T) {
	loads := []int64{10, 20, 30}
	var urls []string
	var regs []*Registry
	op := uint64(0xfeedface)
	for i, ld := range loads {
		s, reg := newScrapeableNode(t, i, ld, 100+int64(i), 50)
		urls = append(urls, s.URL())
		regs = append(regs, reg)
	}
	// A cross-node operation: initiator on node 0, partner on node 2.
	regs[0].Tracer().RecordOp(0, op, "initiate", "target=2")
	time.Sleep(time.Millisecond)
	regs[2].Tracer().RecordOp(2, op, "freeze", "from=0")
	time.Sleep(time.Millisecond)
	regs[0].Tracer().RecordOp(0, op, "resolve", "moved=5")
	regs[1].Tracer().Record(1, "noise", "untagged, must not stitch")

	v, err := Aggregate(urls)
	if err != nil {
		t.Fatal(err)
	}
	// Counters sum across nodes: 1 + 2 + 3.
	if got := v.Value("cluster_initiations_total"); got != 6 {
		t.Fatalf("summed counter = %v, want 6", got)
	}
	// Per-node gauges stay distinct lines; Dist sees all three.
	n, mean, std, vd := v.Dist(LoadGaugeBase)
	if n != 3 || mean != 20 {
		t.Fatalf("Dist = n=%d mean=%v", n, mean)
	}
	wantStd := math.Sqrt((100.0 + 0 + 100.0) / 3.0)
	if math.Abs(std-wantStd) > 1e-9 || math.Abs(vd-wantStd/20) > 1e-9 {
		t.Fatalf("Dist std=%v vd=%v, want %v %v", std, vd, wantStd, wantStd/20)
	}
	// The op stitched across processes, sorted by time.
	evs := v.Ops[op]
	if len(evs) != 3 {
		t.Fatalf("stitched op has %d events: %+v", len(evs), evs)
	}
	wantKinds := []string{"initiate", "freeze", "resolve"}
	wantNodes := []int{0, 2, 0}
	for i := range evs {
		if evs[i].Kind != wantKinds[i] || evs[i].Node != wantNodes[i] {
			t.Fatalf("stitched timeline = %+v", evs)
		}
		if i > 0 && evs[i].At.Before(evs[i-1].At) {
			t.Fatalf("timeline not monotone: %+v", evs)
		}
	}
	if ids := v.OpIDs(); len(ids) != 1 || ids[0] != op {
		t.Fatalf("OpIDs = %v", ids)
	}
	// Per-node series were scraped.
	if len(v.Nodes[1].Series.Columns) != 1 || v.Nodes[1].Series.Samples[0].V[0] != 20 {
		t.Fatalf("node 1 series = %+v", v.Nodes[1].Series)
	}
	// MergeSeries folds the per-node load columns into one trajectory.
	pts := v.MergeSeries("load", time.Second)
	if len(pts) == 0 {
		t.Fatal("MergeSeries returned nothing")
	}
	last := pts[len(pts)-1]
	if last.N != 3 || last.Mean != 20 {
		t.Fatalf("merged point = %+v", last)
	}
}

func TestAggregatePartialAndTotalFailure(t *testing.T) {
	s, _ := newScrapeableNode(t, 0, 5, 10, 5)
	dead := "http://127.0.0.1:1" // nothing listens on port 1
	v, err := Aggregate([]string{s.URL(), dead})
	if err != nil {
		t.Fatalf("partial failure should degrade, not fail: %v", err)
	}
	if v.Nodes[0].Err != nil || v.Nodes[1].Err == nil {
		t.Fatalf("per-node errs = %v / %v", v.Nodes[0].Err, v.Nodes[1].Err)
	}
	if n, _, _, _ := v.Dist(LoadGaugeBase); n != 1 {
		t.Fatalf("Dist over the one live node: n=%d", n)
	}
	if _, err := Aggregate([]string{dead}); err == nil {
		t.Fatal("all-dead aggregate should error")
	}
}

// TestAggregateOptsTimeoutAndLatency: the configurable scrape timeout
// bounds how long a hung node can stall its scrape, and every node's
// scrape latency is measured whether or not it succeeded.
func TestAggregateOptsTimeoutAndLatency(t *testing.T) {
	s, _ := newScrapeableNode(t, 0, 5, 10, 5)
	// A listener that accepts connections but never answers: only the
	// scrape timeout unblocks it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	hang := "http://" + ln.Addr().String()

	start := time.Now()
	v, err := AggregateOpts([]string{s.URL(), hang}, AggOptions{Timeout: 75 * time.Millisecond})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("one live node should keep the view alive: %v", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("scrape took %v; the 75ms timeout did not bound the hung node", elapsed)
	}
	if v.Nodes[1].Err == nil {
		t.Fatal("hung node scrape should report an error")
	}
	if v.Nodes[1].Latency < 50*time.Millisecond {
		t.Fatalf("hung node latency = %v, want >= ~75ms (timeout-bounded)", v.Nodes[1].Latency)
	}
	if v.Nodes[0].Err != nil || v.Nodes[0].Latency <= 0 {
		t.Fatalf("live node: err=%v latency=%v, want nil err and measured latency", v.Nodes[0].Err, v.Nodes[0].Latency)
	}
}

// TestServeAggregatorOptsExtraAndScrapeMS: extra handlers mount on the
// aggregator mux (without overriding built-ins) and the /cluster JSON
// surfaces per-node scrape latency and error strings.
func TestServeAggregatorOptsExtraAndScrapeMS(t *testing.T) {
	s, _ := newScrapeableNode(t, 0, 5, 10, 5)
	dead := "http://127.0.0.1:1" // nothing listens on port 1
	agg, err := ServeAggregatorOpts("127.0.0.1:0", []string{s.URL(), dead}, AggOptions{
		Timeout: 500 * time.Millisecond,
		Extra: map[string]http.HandlerFunc{
			"/custom": func(w http.ResponseWriter, _ *http.Request) {
				fmt.Fprint(w, "custom ok")
			},
			"/healthz": func(w http.ResponseWriter, _ *http.Request) {
				fmt.Fprint(w, "hijacked")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	if code, body := get(t, agg.URL()+"/custom"); code != 200 || body != "custom ok" {
		t.Fatalf("/custom = %d %q", code, body)
	}
	// The reserved path kept its built-in handler.
	if _, body := get(t, agg.URL()+"/healthz"); !strings.Contains(body, "role=aggregator") {
		t.Fatalf("/healthz was overridden: %q", body)
	}

	code, body := get(t, agg.URL()+"/cluster")
	if code != 200 {
		t.Fatalf("/cluster = %d", code)
	}
	var doc struct {
		Nodes []struct {
			OK       bool    `json:"ok"`
			ScrapeMS float64 `json:"scrape_ms"`
			Err      string  `json:"err"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/cluster not JSON: %v\n%s", err, body)
	}
	if len(doc.Nodes) != 2 {
		t.Fatalf("/cluster nodes = %+v", doc.Nodes)
	}
	if !doc.Nodes[0].OK || doc.Nodes[0].ScrapeMS <= 0 || doc.Nodes[0].Err != "" {
		t.Fatalf("live node doc = %+v", doc.Nodes[0])
	}
	if doc.Nodes[1].OK || doc.Nodes[1].Err == "" {
		t.Fatalf("dead node doc should carry its error string: %+v", doc.Nodes[1])
	}
}

func TestServeAggregatorEndpoints(t *testing.T) {
	op := uint64(0xabcdef)
	s0, reg0 := newScrapeableNode(t, 0, 8, 20, 12)
	s1, reg1 := newScrapeableNode(t, 1, 16, 30, 14)
	reg0.Tracer().RecordOp(0, op, "initiate", "")
	time.Sleep(time.Millisecond)
	reg1.Tracer().RecordOp(1, op, "freeze", "")

	agg, err := ServeAggregator("127.0.0.1:0", []string{s0.URL(), s1.URL()})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	code, body := get(t, agg.URL()+"/healthz")
	if code != 200 || !strings.Contains(body, "role=aggregator") || !strings.Contains(body, "upstreams=2") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get(t, agg.URL()+"/cluster")
	if code != 200 {
		t.Fatalf("/cluster = %d", code)
	}
	var doc struct {
		Nodes []struct {
			OK bool `json:"ok"`
		} `json:"nodes"`
		Load struct {
			N    int     `json:"n"`
			Mean float64 `json:"mean"`
			VD   float64 `json:"vd"`
		} `json:"load"`
		Ops int `json:"ops"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/cluster not JSON: %v\n%s", err, body)
	}
	if len(doc.Nodes) != 2 || !doc.Nodes[0].OK || !doc.Nodes[1].OK {
		t.Fatalf("/cluster nodes = %+v", doc.Nodes)
	}
	if doc.Load.N != 2 || doc.Load.Mean != 12 || doc.Ops != 1 {
		t.Fatalf("/cluster = %+v\n%s", doc, body)
	}

	code, body = get(t, agg.URL()+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	merged, _, err := ParsePrometheus(strings.NewReader(body))
	if err != nil {
		t.Fatalf("aggregator /metrics failed conformance: %v\n%s", err, body)
	}
	if merged["cluster_initiations_total"] != 3 { // 1 + 2
		t.Fatalf("merged counter = %v", merged["cluster_initiations_total"])
	}

	code, body = get(t, agg.URL()+fmt.Sprintf("/trace?op=%d", op))
	if code != 200 {
		t.Fatalf("/trace = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 {
		t.Fatalf("/trace?op lines = %d:\n%s", len(lines), body)
	}
	var first, second Event
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first.Node != 0 || second.Node != 1 || second.At.Before(first.At) {
		t.Fatalf("stitched trace order: %+v then %+v", first, second)
	}
	if code, _ := get(t, agg.URL()+"/trace?op=zzz"); code != 400 {
		t.Fatalf("bad op filter = %d, want 400", code)
	}

	code, body = get(t, agg.URL()+"/series?col=load&bucket_ms=1000")
	if code != 200 {
		t.Fatalf("/series = %d", code)
	}
	var series struct {
		Column string `json:"column"`
		Points []struct {
			N    int     `json:"n"`
			Mean float64 `json:"mean"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		t.Fatalf("/series not JSON: %v\n%s", err, body)
	}
	if series.Column != "load" || len(series.Points) == 0 {
		t.Fatalf("/series = %s", body)
	}
	if p := series.Points[len(series.Points)-1]; p.N != 2 || p.Mean != 12 {
		t.Fatalf("/series last point = %+v", p)
	}
	if code, _ := get(t, agg.URL()+"/series?bucket_ms=-1"); code != 400 {
		t.Fatalf("bad bucket_ms = %d, want 400", code)
	}
}
