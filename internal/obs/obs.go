// Package obs is the repository's zero-dependency observability layer:
// atomic counters and gauges, fixed-bucket histograms with online
// moments, and a bounded ring-buffer event tracer, collected behind a
// Registry that can export everything as Prometheus text, JSON, or
// JSONL events.
//
// # Cost model
//
// Instrumentation must be cheap enough to leave compiled into every
// hot path, so the layer is built around two invariants:
//
//   - Disabled is (almost) free. Every handle type (*Counter, *Gauge,
//     *Histogram, *Tracer) is nil-safe: methods on a nil receiver are a
//     single predictable branch, so a component handed a nil *Registry
//     gets nil handles and its instrumentation compiles down to no-ops
//     (~1 ns, zero allocations — see BenchmarkObsDisabled).
//   - Enabled is allocation-free. Counters and gauges are one atomic
//     add; a histogram observation is a short linear bucket scan plus
//     three atomic adds. No locks, no maps, no interface boxing on the
//     observation path. Registration (Registry.Counter etc.) does take
//     a lock and may allocate — components are expected to resolve
//     their handles once, up front, and hold them.
//
// # Naming
//
// Metric names follow the Prometheus convention, including inline
// labels: "cluster_aborts_total{reason=\"timeout\"}". The registry
// treats the whole string as the identity; the Prometheus exporter
// groups metrics that share a base name (the part before '{') under
// one # TYPE header.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use, and all methods are safe on a nil receiver (no-ops),
// which is the disabled-instrumentation path.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds d (callers should keep counters monotone: d >= 0).
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depth, current load).
// Zero value ready; nil receiver no-ops.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Max raises the gauge to v if v is larger — a lock-free high-water
// mark, safe against concurrent Max calls.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Metric is implemented by the exportable metric kinds (*Counter,
// *Gauge, *Histogram). It exists so Attach is type-safe without the
// registry knowing about concrete construction.
type Metric interface{ metricType() string }

func (*Counter) metricType() string   { return "counter" }
func (*Gauge) metricType() string     { return "gauge" }
func (*Histogram) metricType() string { return "histogram" }

// Registry is a named collection of metrics plus one event tracer.
// All methods are safe for concurrent use and safe on a nil receiver:
// a nil *Registry hands out nil handles, turning the entire
// instrumentation of a component into no-ops.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]Metric
	tracer  *Tracer
	rec     *Recorder
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]Metric)}
}

// Counter returns the counter registered under name, creating it if
// needed. Returns nil (a no-op handle) on a nil registry or if the name
// is already taken by a different metric kind.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		c, _ := m.(*Counter)
		return c
	}
	c := new(Counter)
	r.metrics[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		g, _ := m.(*Gauge)
		return g
	}
	g := new(Gauge)
	r.metrics[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds (ascending; an implicit +Inf
// overflow bucket is appended) if needed. An existing histogram keeps
// its original buckets.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		h, _ := m.(*Histogram)
		return h
	}
	h := NewHistogram(bounds)
	r.metrics[name] = h
	return h
}

// Attach registers an externally created metric under name, so a
// component that keeps its own zero-value counters (e.g. a wire
// transport that must count even without a registry) can publish them.
// The first registration wins; attaching to a nil registry no-ops.
func (r *Registry) Attach(name string, m Metric) {
	if r == nil || m == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.metrics[name]; !ok {
		r.metrics[name] = m
	}
}

// Tracer returns the registry's event tracer, creating it with
// DefaultTraceCapacity on first use. Nil registry returns a nil (no-op)
// tracer.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tracer == nil {
		r.tracer = NewTracer(DefaultTraceCapacity)
		r.metrics["trace_dropped_total"] = &r.tracer.dropped
	}
	return r.tracer
}

// SetTracer replaces the registry's tracer (e.g. with a different
// capacity). It is intended for setup time, before events flow.
func (r *Registry) SetTracer(t *Tracer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tracer = t
	if t != nil {
		r.metrics["trace_dropped_total"] = &t.dropped
	} else {
		delete(r.metrics, "trace_dropped_total")
	}
	r.mu.Unlock()
}

// Recorder returns the registry's time-series recorder, or nil if none
// was attached. Unlike Tracer it is not auto-created: a recorder's
// columns are component-specific, so whoever owns the registry decides
// what to record (e.g. cluster.NewRecorder) and attaches it with
// SetRecorder.
func (r *Registry) Recorder() *Recorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rec
}

// SetRecorder attaches the registry's time-series recorder; the debug
// server's /series endpoint exports it. Intended for setup time.
func (r *Registry) SetRecorder(rec *Recorder) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.rec = rec
	r.mu.Unlock()
}

// names returns the registered metric names, sorted, plus the metric
// map snapshot (so exporters iterate without holding the lock).
func (r *Registry) snapshot() ([]string, map[string]Metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.metrics))
	ms := make(map[string]Metric, len(r.metrics))
	for n, m := range r.metrics {
		names = append(names, n)
		ms[n] = m
	}
	sort.Strings(names)
	return names, ms
}

// baseName strips the inline label part: "a_total{x=\"y\"}" → "a_total".
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelPart returns the inline label part without braces, or "".
func labelPart(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return strings.TrimSuffix(name[i+1:], "}")
	}
	return ""
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format, sorted by name, with # TYPE headers per base name.
// Histograms expand into cumulative _bucket series plus _sum and
// _count. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	names, ms := r.snapshot()
	lastBase := ""
	for _, name := range names {
		m := ms[name]
		base := baseName(name)
		if base != lastBase {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, m.metricType()); err != nil {
				return err
			}
			lastBase = base
		}
		var err error
		switch v := m.(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "%s %d\n", name, v.Value())
		case *Gauge:
			_, err = fmt.Fprintf(w, "%s %d\n", name, v.Value())
		case *Histogram:
			err = v.writePrometheus(w, base, labelPart(name))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the registry as one JSON object keyed by metric
// name: counters and gauges as numbers, histograms as objects carrying
// count/sum/mean/std/vd and the bucket counts. Keys are sorted (JSON
// object marshaling), so output is deterministic for a given state.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	_, ms := r.snapshot()
	out := make(map[string]any, len(ms))
	for name, m := range ms {
		switch v := m.(type) {
		case *Counter:
			out[name] = v.Value()
		case *Gauge:
			out[name] = v.Value()
		case *Histogram:
			out[name] = v.jsonValue()
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
