package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestParseSLO(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SLO
	}{
		{"p99 < 20ms over 30s/5m", SLO{0.99, 0.020, 30 * time.Second, 5 * time.Minute, 2}},
		{"p99<20ms over 30s/5m", SLO{0.99, 0.020, 30 * time.Second, 5 * time.Minute, 2}},
		{"P99.9 < 1s over 1m/10m burn 14.4", SLO{0.999, 1, time.Minute, 10 * time.Minute, 14.4}},
		{"p50<500us over 100ms/1s burn=3", SLO{0.50, 0.0005, 100 * time.Millisecond, time.Second, 3}},
	} {
		got, err := ParseSLO(tc.in)
		if err != nil {
			t.Errorf("ParseSLO(%q): %v", tc.in, err)
			continue
		}
		if math.Abs(got.Quantile-tc.want.Quantile) > 1e-12 ||
			math.Abs(got.Threshold-tc.want.Threshold) > 1e-12 ||
			got.Short != tc.want.Short || got.Long != tc.want.Long ||
			math.Abs(got.Burn-tc.want.Burn) > 1e-12 {
			t.Errorf("ParseSLO(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		// String() round trips through the parser.
		again, err := ParseSLO(got.String())
		if err != nil || again != got {
			t.Errorf("ParseSLO(%q).String() = %q did not round trip: %+v, %v", tc.in, got.String(), again, err)
		}
	}
	for _, bad := range []string{
		"", "99<20ms over 30s/5m", "p99 20ms over 30s/5m", "p0<20ms over 30s/5m",
		"p100<20ms over 30s/5m", "p99<20ms", "p99<20ms over 30s", "p99<20ms over 5m/30s",
		"p99<-5ms over 30s/5m", "p99<20ms over 30s/5m burn -1", "p99<bogus over 30s/5m",
	} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO accepted %q", bad)
		}
	}
}

// snapFrom builds a histSnap from observations against given bounds,
// mimicking what extractHistSnap reconstructs from a scrape.
func snapFrom(at time.Time, bounds []float64, obs []float64) histSnap {
	h := NewHistogram(bounds)
	for _, v := range obs {
		h.Observe(v)
	}
	hb, counts := h.Buckets()
	s := histSnap{at: at, count: float64(h.Count()), sum: h.Sum()}
	cum := 0.0
	for i, c := range counts {
		cum += float64(c)
		le := math.Inf(1)
		if i < len(hb) {
			le = hb[i]
		}
		s.buckets = append(s.buckets, bucketCum{le: le, n: cum})
	}
	return s
}

func TestBurnRateMath(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1, 1}
	t0 := time.Unix(1000, 0)
	old := snapFrom(t0, bounds, nil)
	// 80 fast (5ms) + 20 slow (0.5s) completions; threshold 10ms.
	var obs []float64
	for i := 0; i < 80; i++ {
		obs = append(obs, 0.005)
	}
	for i := 0; i < 20; i++ {
		obs = append(obs, 0.5)
	}
	cur := snapFrom(t0.Add(time.Second), bounds, obs)

	if got := deltaBadFrac(cur, old, 0.01); math.Abs(got-0.20) > 1e-9 {
		t.Errorf("deltaBadFrac = %v, want 0.20", got)
	}
	// All 100 sit below 1s, so p99 interpolates inside the (0.1, 1]
	// bucket that holds the 20 slow ones.
	q := deltaQuantile(cur, old, 0.99)
	if q <= 0.1 || q > 1 {
		t.Errorf("deltaQuantile(p99) = %v, want in (0.1, 1]", q)
	}
	// p50 sits in the (0.001, 0.01] bucket with the fast 80.
	q = deltaQuantile(cur, old, 0.50)
	if q <= 0.001 || q > 0.01 {
		t.Errorf("deltaQuantile(p50) = %v, want in (0.001, 0.01]", q)
	}
	// Empty window: no bad fraction, no quantile.
	if f := deltaBadFrac(cur, cur, 0.01); f != 0 {
		t.Errorf("empty-window bad frac = %v", f)
	}
	if q := deltaQuantile(cur, cur, 0.99); q != 0 {
		t.Errorf("empty-window quantile = %v", q)
	}
	// The delta is window-local: a second snapshot later with only fast
	// completions has zero bad fraction even though cur still holds the
	// old slow ones cumulatively.
	cur2 := cur
	cur2.at = t0.Add(2 * time.Second)
	h := snapFrom(t0, bounds, []float64{0.002, 0.003})
	cur2.count += h.count
	bs := append([]bucketCum(nil), cur.buckets...)
	for i := range bs {
		bs[i].n += h.buckets[i].n
	}
	cur2.buckets = bs
	if f := deltaBadFrac(cur2, cur, 0.01); f != 0 {
		t.Errorf("fast-only delta bad frac = %v, want 0", f)
	}
}

// monitorNode serves a registry with a sojourn histogram plus the load
// gauge, returning the server, registry and histogram handle.
func monitorNode(t *testing.T, id int, load int64) (*DebugServer, *Registry, *Histogram) {
	t.Helper()
	reg := NewRegistry()
	reg.Gauge(fmt.Sprintf(`cluster_node_load{node="%d"}`, id)).Set(load)
	h := reg.Histogram(fmt.Sprintf(`serve_sojourn_seconds{node="%d"}`, id), SojournBuckets)
	s, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, reg, h
}

// TestMonitorAlertAndClear drives a monitor by hand through good →
// bad → good traffic and checks the multi-window burn-rate alert
// fires, traces, and clears.
func TestMonitorAlertAndClear(t *testing.T) {
	s, reg, h := monitorNode(t, 0, 4)
	slo, err := ParseSLO("p99 < 20ms over 80ms/240ms")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(MonitorConfig{
		URLs:   []string{s.URL()},
		SLO:    slo,
		Period: 40 * time.Millisecond,
		Tracer: reg.Tracer(),
	})

	// Baseline + healthy traffic: burn stays ~0.
	m.Poll()
	for i := 0; i < 100; i++ {
		h.Observe(0.002)
	}
	time.Sleep(30 * time.Millisecond)
	doc := m.Poll()
	if doc.Alerting || doc.BurnShort > 0.01 {
		t.Fatalf("healthy traffic alerting: %+v", doc)
	}
	if doc.Status != "ok" {
		t.Fatalf("healthy status = %q", doc.Status)
	}

	// Latency regression: everything lands at 200ms >> 20ms.
	for i := 0; i < 100; i++ {
		h.Observe(0.2)
	}
	time.Sleep(30 * time.Millisecond)
	doc = m.Poll()
	if !doc.Alerting || doc.Status != "alerting" {
		t.Fatalf("regression not alerting: %+v", doc)
	}
	if doc.BurnShort < slo.Burn || doc.BurnLong < slo.Burn {
		t.Fatalf("burn rates = %v/%v, want >= %v", doc.BurnShort, doc.BurnLong, slo.Burn)
	}
	if doc.QShort < 0.02 {
		t.Fatalf("observed p99 = %v, want >= threshold", doc.QShort)
	}
	if doc.AlertsFired != 1 {
		t.Fatalf("alerts fired = %d", doc.AlertsFired)
	}

	// Recovery: good traffic only; once the bad completions age out of
	// the short window the alert clears.
	deadline := time.Now().Add(2 * time.Second)
	for doc.Alerting && time.Now().Before(deadline) {
		for i := 0; i < 50; i++ {
			h.Observe(0.002)
		}
		time.Sleep(45 * time.Millisecond)
		doc = m.Poll()
	}
	if doc.Alerting {
		t.Fatalf("alert never cleared: %+v", doc)
	}
	if doc.AlertsFired != 1 {
		t.Fatalf("alerts fired after clear = %d", doc.AlertsFired)
	}

	// The tracer saw the transition pair.
	var sb strings.Builder
	if err := reg.Tracer().WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	trace := sb.String()
	if !strings.Contains(trace, "slo_alert") || !strings.Contains(trace, "slo_clear") {
		t.Fatalf("trace missing slo_alert/slo_clear events:\n%s", trace)
	}
}

// TestMonitorPartiallyDeadCluster: dead upstreams degrade the health
// view — per-node unreachable verdicts with error strings — while the
// SLO keeps evaluating over the live nodes. An all-dead cluster
// degrades too; the monitor never errors.
func TestMonitorPartiallyDeadCluster(t *testing.T) {
	s, _, h := monitorNode(t, 0, 4)
	dead := "http://127.0.0.1:1"
	slo, _ := ParseSLO("p99 < 20ms over 80ms/240ms")
	m := NewMonitor(MonitorConfig{
		URLs:    []string{s.URL(), dead},
		SLO:     slo,
		Timeout: 500 * time.Millisecond,
	})

	m.Poll()
	for i := 0; i < 50; i++ {
		h.Observe(0.001)
	}
	time.Sleep(20 * time.Millisecond)
	doc := m.Poll()
	if doc.Status != "degraded" {
		t.Fatalf("status = %q, want degraded (one upstream dead)", doc.Status)
	}
	if len(doc.Nodes) != 2 {
		t.Fatalf("nodes = %+v", doc.Nodes)
	}
	if doc.Nodes[0].Verdict != "healthy" || doc.Nodes[0].Err != "" {
		t.Fatalf("live node = %+v", doc.Nodes[0])
	}
	if doc.Nodes[1].Verdict != "unreachable" || doc.Nodes[1].Err == "" {
		t.Fatalf("dead node = %+v", doc.Nodes[1])
	}
	// The live node's completions still feed the windows.
	if doc.ObsLong != 50 {
		t.Fatalf("window observations = %v, want 50 (live node only)", doc.ObsLong)
	}
	if doc.Alerting {
		t.Fatalf("healthy live traffic must not alert: %+v", doc)
	}

	// Whole cluster dark: still no error, everything unreachable.
	m2 := NewMonitor(MonitorConfig{URLs: []string{dead}, SLO: slo, Timeout: 300 * time.Millisecond})
	doc = m2.Poll()
	if doc.Status != "degraded" || len(doc.Nodes) != 1 || doc.Nodes[0].Verdict != "unreachable" {
		t.Fatalf("all-dead doc = %+v", doc)
	}
}

// TestMonitorVerdicts: load saturation, sendq backup, and abort-rate
// EWMAs each flip a node's verdict.
func TestMonitorVerdicts(t *testing.T) {
	// Four nodes: one hot (load 90 vs mean 24), one with a backed-up
	// sendq, one with an abort storm, one plain healthy.
	sHot, _, _ := monitorNode(t, 0, 90)
	sQ, regQ, _ := monitorNode(t, 1, 2)
	regQ.Gauge(`wire_sendq_depth{node="1"}`).Set(5000)
	sAb, regAb, _ := monitorNode(t, 2, 2)
	aborts := regAb.Counter(`cluster_aborts_total{reason="timeout"}`)
	sOK, _, _ := monitorNode(t, 3, 2)

	slo, _ := ParseSLO("p99 < 20ms over 80ms/240ms")
	m := NewMonitor(MonitorConfig{
		URLs: []string{sHot.URL(), sQ.URL(), sAb.URL(), sOK.URL()},
		SLO:  slo,
	})
	m.Poll()
	aborts.Add(1000) // ~tens of thousands per second over a short poll gap
	time.Sleep(20 * time.Millisecond)
	doc := m.Poll()

	want := []string{"saturated", "degraded", "degraded", "healthy"}
	for i, w := range want {
		if doc.Nodes[i].Verdict != w {
			t.Errorf("node %d verdict = %q, want %q (%+v)", i, doc.Nodes[i].Verdict, w, doc.Nodes[i])
		}
	}
	if doc.Nodes[2].AbortEWMA <= DefaultAbortRateMax {
		t.Errorf("abort EWMA = %v, want > %v", doc.Nodes[2].AbortEWMA, DefaultAbortRateMax)
	}
	if doc.Status != "degraded" {
		t.Errorf("status = %q, want degraded", doc.Status)
	}

	// The /health handler serves the same document as JSON.
	srv, err := ServeDebugOpts("127.0.0.1:0", nil, DebugOptions{
		Extra: map[string]http.HandlerFunc{"/health": m.Handler()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, srv.URL()+"/health")
	if code != 200 {
		t.Fatalf("/health = %d", code)
	}
	var got HealthDoc
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("/health not JSON: %v\n%s", err, body)
	}
	if got.Status != doc.Status || len(got.Nodes) != 4 || got.SLO != slo.String() {
		t.Fatalf("/health doc = %+v", got)
	}
}

// TestHealthStatusCodes: /health answers 503 while the SLO alert is
// firing or any upstream is unreachable, and 200 otherwise — including
// "degraded", which is already covered by TestMonitorVerdicts. The JSON
// body is the same document either way. Alongside the status codes this
// exercises the alert lifecycle metrics and the OnAlert hook.
func TestHealthStatusCodes(t *testing.T) {
	s, _, h := monitorNode(t, 0, 4)
	slo, err := ParseSLO("p99 < 20ms over 80ms/240ms")
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	alerted := make(chan HealthDoc, 4)
	m := NewMonitor(MonitorConfig{
		URLs:    []string{s.URL()},
		SLO:     slo,
		Obs:     reg,
		OnAlert: func(doc HealthDoc) { alerted <- doc },
	})
	srv, err := ServeDebugOpts("127.0.0.1:0", nil, DebugOptions{
		Extra: map[string]http.HandlerFunc{"/health": m.Handler()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Healthy traffic → 200.
	m.Poll()
	for i := 0; i < 100; i++ {
		h.Observe(0.002)
	}
	time.Sleep(30 * time.Millisecond)
	doc := m.Poll()
	if doc.Alerting {
		t.Fatalf("healthy traffic alerting: %+v", doc)
	}
	if code, _ := get(t, srv.URL()+"/health"); code != 200 {
		t.Fatalf("healthy /health = %d, want 200", code)
	}
	if got := reg.Gauge(`monitor_alert_active{severity="slo"}`).Value(); got != 0 {
		t.Fatalf("slo active gauge = %d while healthy", got)
	}

	// Latency regression → alert fires → 503, metrics, OnAlert.
	for i := 0; i < 100; i++ {
		h.Observe(0.2)
	}
	time.Sleep(30 * time.Millisecond)
	doc = m.Poll()
	if !doc.Alerting {
		t.Fatalf("regression not alerting: %+v", doc)
	}
	code, body := get(t, srv.URL()+"/health")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("alerting /health = %d, want 503", code)
	}
	var got HealthDoc
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("503 body not the JSON doc: %v\n%s", err, body)
	}
	if !got.Alerting || got.Status != "alerting" {
		t.Fatalf("503 body = %+v", got)
	}
	if n := reg.Counter(`monitor_alerts_total{severity="slo"}`).Value(); n != 1 {
		t.Fatalf("slo alerts total = %d, want 1", n)
	}
	if g := reg.Gauge(`monitor_alert_active{severity="slo"}`).Value(); g != 1 {
		t.Fatalf("slo active gauge = %d, want 1", g)
	}
	select {
	case fired := <-alerted:
		if !fired.Alerting {
			t.Fatalf("OnAlert doc = %+v", fired)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnAlert never ran")
	}

	// Recovery → 200 again, gauge drops, counter stays (it is a total).
	deadline := time.Now().Add(2 * time.Second)
	for doc.Alerting && time.Now().Before(deadline) {
		for i := 0; i < 50; i++ {
			h.Observe(0.002)
		}
		time.Sleep(45 * time.Millisecond)
		doc = m.Poll()
	}
	if doc.Alerting {
		t.Fatalf("alert never cleared: %+v", doc)
	}
	if code, _ := get(t, srv.URL()+"/health"); code != 200 {
		t.Fatalf("recovered /health = %d, want 200", code)
	}
	if g := reg.Gauge(`monitor_alert_active{severity="slo"}`).Value(); g != 0 {
		t.Fatalf("slo active gauge after clear = %d", g)
	}
	if n := reg.Counter(`monitor_alerts_total{severity="slo"}`).Value(); n != 1 {
		t.Fatalf("slo alerts total after clear = %d, want 1", n)
	}
	select {
	case <-alerted:
		t.Fatal("OnAlert ran again without a fresh clear→firing transition")
	default:
	}
}

// TestHealthUnreachable503: a dead upstream makes /health answer 503,
// and the unreachable lifecycle metrics track it.
func TestHealthUnreachable503(t *testing.T) {
	s, _, _ := monitorNode(t, 0, 4)
	dead := "http://127.0.0.1:1"
	slo, _ := ParseSLO("p99 < 20ms over 80ms/240ms")
	reg := NewRegistry()
	m := NewMonitor(MonitorConfig{
		URLs:    []string{s.URL(), dead},
		SLO:     slo,
		Timeout: 500 * time.Millisecond,
		Obs:     reg,
	})
	srv, err := ServeDebugOpts("127.0.0.1:0", nil, DebugOptions{
		Extra: map[string]http.HandlerFunc{"/health": m.Handler()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	m.Poll()
	code, body := get(t, srv.URL()+"/health")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/health with dead upstream = %d, want 503", code)
	}
	var got HealthDoc
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("503 body not the JSON doc: %v\n%s", err, body)
	}
	if g := reg.Gauge(`monitor_alert_active{severity="unreachable"}`).Value(); g != 1 {
		t.Fatalf("unreachable active gauge = %d, want 1", g)
	}
	if n := reg.Counter(`monitor_alerts_total{severity="unreachable"}`).Value(); n != 1 {
		t.Fatalf("unreachable alerts total = %d, want 1", n)
	}

	// Whole cluster dark: the aggregate itself errors; still 503, and the
	// active gauge covers every URL.
	m2 := NewMonitor(MonitorConfig{
		URLs: []string{dead}, SLO: slo,
		Timeout: 300 * time.Millisecond, Obs: reg,
	})
	srv2, err := ServeDebugOpts("127.0.0.1:0", nil, DebugOptions{
		Extra: map[string]http.HandlerFunc{"/health": m2.Handler()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if code, _ := get(t, srv2.URL()+"/health"); code != http.StatusServiceUnavailable {
		t.Fatalf("dark-cluster /health = %d, want 503", code)
	}
}

// TestMonitorStartStop: the background loop polls on its own and shuts
// down cleanly.
func TestMonitorStartStop(t *testing.T) {
	s, _, h := monitorNode(t, 0, 4)
	slo, _ := ParseSLO("p99 < 20ms over 80ms/240ms")
	m := NewMonitor(MonitorConfig{URLs: []string{s.URL()}, SLO: slo, Period: 10 * time.Millisecond})
	for i := 0; i < 10; i++ {
		h.Observe(0.001)
	}
	m.Start()
	m.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for m.Last().At.IsZero() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	m.Stop()
	m.Stop() // idempotent
	doc := m.Last()
	if doc.At.IsZero() {
		t.Fatal("loop never polled")
	}
	if doc.Nodes[0].Verdict != "healthy" {
		t.Fatalf("doc = %+v", doc)
	}
}
