package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EvGenerate: "generate", EvConsume: "consume", EvBalance: "balance",
		EvBorrow: "borrow", EvSettle: "settle",
		EvDrop: "drop", EvTimeout: "timeout", EvCrash: "crash",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
	if !strings.Contains(EventKind(200).String(), "200") {
		t.Fatal("unknown kind should include number")
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Record(Event{Step: i, Kind: EvGenerate})
	}
	ev := r.Events()
	if len(ev) != 3 {
		t.Fatalf("retained %d events, want 3", len(ev))
	}
	// Oldest first: steps 2,3,4.
	for i, e := range ev {
		if e.Step != i+2 {
			t.Fatalf("event %d has step %d", i, e.Step)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("total %d", r.Total())
	}
	if r.CountKind(EvGenerate) != 5 || r.CountKind(EvConsume) != 0 {
		t.Fatal("kind counts wrong")
	}
	if r.CountKind(EventKind(99)) != 0 {
		t.Fatal("unknown kind count should be 0")
	}
}

func TestRecorderPartial(t *testing.T) {
	r := NewRecorder(10)
	r.Record(Event{Step: 1})
	r.Record(Event{Step: 2})
	ev := r.Events()
	if len(ev) != 2 || ev[0].Step != 1 || ev[1].Step != 2 {
		t.Fatalf("partial buffer wrong: %v", ev)
	}
}

func TestRecorderZeroCap(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{Step: 1})
	if len(r.Events()) != 0 {
		t.Fatal("zero-cap recorder retained events")
	}
	if r.Total() != 1 {
		t.Fatal("zero-cap recorder must still count")
	}
	neg := NewRecorder(-5)
	neg.Record(Event{})
	if len(neg.Events()) != 0 {
		t.Fatal("negative capacity should behave as zero")
	}
}

func TestTableText(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 0.25)
	tb.AddRow("gamma", 12)
	var buf bytes.Buffer
	if err := tb.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# demo") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, separator, 3 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Fatal("header missing")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.5") {
		t.Fatal("row content missing")
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(1.0)
	tb.AddRow(0.123456)
	tb.AddRow(float32(2.5))
	tb.AddRow(0.0)
	if tb.Rows[0][0] != "1" {
		t.Fatalf("1.0 formatted as %q", tb.Rows[0][0])
	}
	if tb.Rows[1][0] != "0.1235" {
		t.Fatalf("0.123456 formatted as %q", tb.Rows[1][0])
	}
	if tb.Rows[2][0] != "2.5" {
		t.Fatalf("2.5 formatted as %q", tb.Rows[2][0])
	}
	if tb.Rows[3][0] != "0" {
		t.Fatalf("0.0 formatted as %q", tb.Rows[3][0])
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow(1, "two")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,two\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "c")
	tb.AddRow("x")
	var buf bytes.Buffer
	if err := tb.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(buf.String(), "#") {
		t.Fatal("empty title should not emit a title line")
	}
}
