package trace

import (
	"math"
	"strings"
)

// sparkLevels are the eight block elements used by Sparkline.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// finiteRange returns min/max over the finite values only, and whether
// any finite value exists. NaN and ±Inf never contribute to the scale —
// one stray non-finite sample must not flatten the rest of the row.
func finiteRange(values []float64) (lo, hi float64, ok bool) {
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if !ok {
			lo, hi, ok = v, v, true
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, ok
}

// level maps v onto [0, n) against lo with the given span. Non-finite
// values (and a degenerate or non-finite span) map deterministically to
// the lowest level; int(NaN) is implementation-defined in Go, so the
// conversion is never reached for them.
func level(v, lo, span float64, n int) int {
	if !(span > 0) || math.IsInf(span, 0) || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	idx := int((v - lo) / span * float64(n-1))
	if idx < 0 {
		return 0
	}
	if idx >= n {
		return n - 1
	}
	return idx
}

// Sparkline renders values as a compact unicode bar chart, scaling to the
// observed min..max range of the finite values. The experiment harnesses
// attach these to their tables so figure *shapes* are visible directly in
// the terminal output. Empty input yields an empty string; a constant
// series renders at the lowest level, as does any NaN or ±Inf sample.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi, ok := finiteRange(values)
	span := 0.0
	if ok {
		span = hi - lo
	}
	var sb strings.Builder
	for _, v := range values {
		sb.WriteRune(sparkLevels[level(v, lo, span, len(sparkLevels))])
	}
	return sb.String()
}

// Downsample reduces values to at most width points by averaging each
// bucket, for fitting a long series into one terminal row.
func Downsample(values []float64, width int) []float64 {
	if width <= 0 || len(values) <= width {
		return append([]float64(nil), values...)
	}
	out := make([]float64, width)
	for b := 0; b < width; b++ {
		start := b * len(values) / width
		end := (b + 1) * len(values) / width
		if end <= start {
			end = start + 1
		}
		sum := 0.0
		for _, v := range values[start:end] {
			sum += v
		}
		out[b] = sum / float64(end-start)
	}
	return out
}

// heatShades are the five shading levels of HeatRow, light to dark.
var heatShades = []rune(" ░▒▓█")

// HeatRow renders values as shaded cells scaled to lo..hi (pass lo == hi
// to scale to the row's own finite range). Non-finite samples — and a
// non-finite caller-supplied range — render at the lightest shade.
func HeatRow(values []float64, lo, hi float64) string {
	if len(values) == 0 {
		return ""
	}
	if lo >= hi || math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		var ok bool
		if lo, hi, ok = finiteRange(values); !ok {
			lo, hi = 0, 0
		}
	}
	var sb strings.Builder
	span := hi - lo
	for _, v := range values {
		sb.WriteRune(heatShades[level(v, lo, span, len(heatShades))])
	}
	return sb.String()
}
