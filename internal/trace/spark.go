package trace

import "strings"

// sparkLevels are the eight block elements used by Sparkline.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a compact unicode bar chart, scaling to the
// observed min..max range. The experiment harnesses attach these to their
// tables so figure *shapes* are visible directly in the terminal output.
// Empty input yields an empty string; a constant series renders at the
// lowest level.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var sb strings.Builder
	span := hi - lo
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkLevels)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkLevels) {
				idx = len(sparkLevels) - 1
			}
		}
		sb.WriteRune(sparkLevels[idx])
	}
	return sb.String()
}

// Downsample reduces values to at most width points by averaging each
// bucket, for fitting a long series into one terminal row.
func Downsample(values []float64, width int) []float64 {
	if width <= 0 || len(values) <= width {
		return append([]float64(nil), values...)
	}
	out := make([]float64, width)
	for b := 0; b < width; b++ {
		start := b * len(values) / width
		end := (b + 1) * len(values) / width
		if end <= start {
			end = start + 1
		}
		sum := 0.0
		for _, v := range values[start:end] {
			sum += v
		}
		out[b] = sum / float64(end-start)
	}
	return out
}

// heatShades are the five shading levels of HeatRow, light to dark.
var heatShades = []rune(" ░▒▓█")

// HeatRow renders values as shaded cells scaled to lo..hi (pass lo == hi
// to scale to the row's own range).
func HeatRow(values []float64, lo, hi float64) string {
	if len(values) == 0 {
		return ""
	}
	if lo >= hi {
		lo, hi = values[0], values[0]
		for _, v := range values[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	var sb strings.Builder
	span := hi - lo
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(heatShades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(heatShades) {
				idx = len(heatShades) - 1
			}
		}
		sb.WriteRune(heatShades[idx])
	}
	return sb.String()
}
