package trace

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSparklineBasics(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty input should render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("length %d", utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("endpoints wrong: %q", s)
	}
	// Monotone input → non-decreasing levels.
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Fatalf("levels decreased in %q", s)
		}
	}
}

func TestSparklineConstant(t *testing.T) {
	s := Sparkline([]float64{5, 5, 5})
	if s != "▁▁▁" {
		t.Fatalf("constant series rendered %q", s)
	}
}

func TestDownsample(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	out := Downsample(vals, 10)
	if len(out) != 10 {
		t.Fatalf("length %d", len(out))
	}
	// Bucket means are increasing.
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Fatalf("bucket means not increasing: %v", out)
		}
	}
	// Short input passes through (copied, not aliased).
	short := []float64{1, 2}
	got := Downsample(short, 10)
	if len(got) != 2 || got[0] != 1 {
		t.Fatalf("short input mangled: %v", got)
	}
	got[0] = 99
	if short[0] == 99 {
		t.Fatal("Downsample aliased its input")
	}
	if len(Downsample(nil, 5)) != 0 {
		t.Fatal("nil input should give empty output")
	}
}

func TestHeatRow(t *testing.T) {
	if HeatRow(nil, 0, 1) != "" {
		t.Fatal("empty input should render empty")
	}
	s := HeatRow([]float64{0, 0.25, 0.5, 0.75, 1}, 0, 1)
	if utf8.RuneCountInString(s) != 5 {
		t.Fatalf("length of %q", s)
	}
	runes := []rune(s)
	if runes[0] != ' ' || runes[4] != '█' {
		t.Fatalf("extremes wrong: %q", s)
	}
	// Auto-scaling path (lo >= hi).
	auto := HeatRow([]float64{2, 4}, 0, 0)
	if !strings.HasPrefix(auto, " ") || !strings.HasSuffix(auto, "█") {
		t.Fatalf("auto-scaled row %q", auto)
	}
	// Constant row with auto scale renders lightest shade.
	if HeatRow([]float64{3, 3}, 0, 0) != "  " {
		t.Fatal("constant auto-scaled row should be blank shades")
	}
	// Out-of-range values clamp.
	clamped := HeatRow([]float64{-10, 20}, 0, 1)
	r := []rune(clamped)
	if r[0] != ' ' || r[1] != '█' {
		t.Fatalf("clamping failed: %q", clamped)
	}
}

func TestSparklineNonFinite(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	// A stray NaN or ±Inf must render at the lowest level and must not
	// flatten the scale of the finite values around it.
	s := Sparkline([]float64{0, nan, 4, inf, 8, math.Inf(-1)})
	runes := []rune(s)
	if len(runes) != 6 {
		t.Fatalf("length of %q", s)
	}
	if runes[1] != '▁' || runes[3] != '▁' || runes[5] != '▁' {
		t.Fatalf("non-finite values not at lowest level: %q", s)
	}
	if runes[0] != '▁' || runes[4] != '█' {
		t.Fatalf("finite scale poisoned by non-finite neighbors: %q", s)
	}
	if runes[2] == '▁' || runes[2] == '█' {
		t.Fatalf("midpoint not mid-level: %q", s)
	}
	// All-non-finite input renders, deterministically, at the lowest level.
	if got := Sparkline([]float64{nan, inf, math.Inf(-1)}); got != "▁▁▁" {
		t.Fatalf("all-non-finite rendered %q", got)
	}
}

func TestHeatRowNonFinite(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	s := HeatRow([]float64{0, nan, 1, inf}, 0, 1)
	runes := []rune(s)
	if runes[1] != ' ' || runes[3] != ' ' {
		t.Fatalf("non-finite cells not lightest shade: %q", s)
	}
	if runes[0] != ' ' || runes[2] != '█' {
		t.Fatalf("finite cells wrong: %q", s)
	}
	// A non-finite caller-supplied range falls back to the row's own
	// finite range instead of collapsing or garbling the row.
	auto := HeatRow([]float64{2, nan, 4}, inf, nan)
	r := []rune(auto)
	if r[0] != ' ' || r[1] != ' ' || r[2] != '█' {
		t.Fatalf("non-finite range not auto-rescaled: %q", auto)
	}
	if got := HeatRow([]float64{nan, nan}, 0, 0); got != "  " {
		t.Fatalf("all-NaN row rendered %q", got)
	}
}
