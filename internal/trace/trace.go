// Package trace provides lightweight event recording for simulations and
// the tabular writers the experiment harnesses use to emit their results
// (aligned text for the terminal, CSV for files).
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// EventKind labels recorded simulation events.
type EventKind uint8

// Event kinds recorded by instrumented runs.
const (
	EvGenerate EventKind = iota
	EvConsume
	EvBalance
	EvBorrow
	EvSettle
	// Fault-injection events (internal/netsim): a message lost in
	// transit or at a crashed node, a protocol timeout (initiator reply
	// timeout or frozen-partner self-release), and a node crash.
	EvDrop
	EvTimeout
	EvCrash
	kindCount
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvGenerate:
		return "generate"
	case EvConsume:
		return "consume"
	case EvBalance:
		return "balance"
	case EvBorrow:
		return "borrow"
	case EvSettle:
		return "settle"
	case EvDrop:
		return "drop"
	case EvTimeout:
		return "timeout"
	case EvCrash:
		return "crash"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	Step int       // global time step
	Proc int       // acting processor
	Kind EventKind // what happened
	Arg  int       // kind-specific payload (e.g. partner id, class)
}

// Recorder collects events in a bounded ring buffer: the newest Cap events
// are retained. A zero-capacity Recorder drops everything (cheap no-op).
type Recorder struct {
	buf   []Event
	next  int
	count int
	total int64
	kinds [kindCount]int64
}

// NewRecorder returns a recorder retaining up to capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity < 0 {
		capacity = 0
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Record appends one event (dropping the oldest if full).
func (r *Recorder) Record(e Event) {
	r.total++
	if e.Kind < kindCount {
		r.kinds[e.Kind]++
	}
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
}

// Total returns the number of events ever recorded.
func (r *Recorder) Total() int64 { return r.total }

// CountKind returns how many events of kind k were ever recorded.
func (r *Recorder) CountKind(k EventKind) int64 {
	if k >= kindCount {
		return 0
	}
	return r.kinds[k]
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, r.count)
	if r.count == len(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf[:r.count]...)
	}
	return out
}

// Table is a simple column-oriented result table with a title, used by the
// experiment harnesses for both terminal and CSV output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat renders floats compactly: up to 4 significant decimals,
// trailing zeros trimmed.
func formatFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
		_, err := io.WriteString(w, sb.String())
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as CSV (title omitted).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
