package serve

import (
	"fmt"
	"time"

	"lmbalance/internal/rng"
	"lmbalance/internal/workload"
)

// LoadSpec is the skew policy the driver applies to arrivals that are
// not pinned to a node (workload.Arrival.Node < 0): with probability
// HotFrac the job goes to one of the first HotN nodes (uniformly),
// otherwise uniformly to the rest. HotN <= 0 disables the skew and
// unpinned arrivals spread uniformly. This is the production shape the
// balancing protocol exists for — a few front-ends taking most of the
// traffic while the cluster as a whole has headroom.
type LoadSpec struct {
	HotFrac float64
	HotN    int
}

// Target picks the node index for one unpinned arrival.
func (s LoadSpec) Target(r *rng.RNG, n int) int {
	if s.HotN <= 0 || s.HotN >= n {
		return r.Intn(n)
	}
	if r.Bernoulli(s.HotFrac) {
		return r.Intn(s.HotN)
	}
	return s.HotN + r.Intn(n-s.HotN)
}

// DriveResult is the client-side outcome of one driven run.
type DriveResult struct {
	Submitted int64
	Completed int64
	Sojourns  []float64 // seconds, server-stamped, all clients merged
	Elapsed   time.Duration
}

// P returns the exact q-quantile of the observed sojourns, in seconds.
func (d *DriveResult) P(q float64) float64 { return Quantile(d.Sojourns, q) }

// Throughput returns completed jobs per second of driving wall time.
func (d *DriveResult) Throughput() float64 {
	if d.Elapsed <= 0 {
		return 0
	}
	return float64(d.Completed) / d.Elapsed.Seconds()
}

// Drive replays a schedule of arrivals against a serving cluster, open
// loop: one client per address, each arrival submitted at its offset
// from the driving start regardless of how the cluster is keeping up.
// After the last submission it waits — up to timeout — for every
// submitted job to complete, then returns the merged client-side view.
// Jobs still missing at the deadline are simply absent from Sojourns
// (Completed < Submitted tells the caller).
func Drive(addrs []string, arrivals []workload.Arrival, spec LoadSpec, seed uint64, timeout time.Duration) (*DriveResult, error) {
	n := len(addrs)
	if n == 0 {
		return nil, fmt.Errorf("serve: no addresses to drive")
	}
	clients := make([]*Client, n)
	for i, a := range addrs {
		c, err := Dial(a)
		if err != nil {
			for _, cc := range clients[:i] {
				cc.Close()
			}
			return nil, err
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	r := rng.New(seed)
	start := time.Now()
	for _, a := range arrivals {
		if d := time.Until(start.Add(a.At)); d > 0 {
			time.Sleep(d)
		}
		node := a.Node
		if node < 0 {
			node = spec.Target(r, n)
		}
		if node >= n {
			node = node % n
		}
		if err := clients[node].Submit(a.Units); err != nil {
			return nil, fmt.Errorf("serve: submit to %s: %w", addrs[node], err)
		}
	}

	res := &DriveResult{}
	for _, c := range clients {
		res.Submitted += c.Submitted()
	}
	deadline := time.Now().Add(timeout)
	for {
		var done int64
		for _, c := range clients {
			done += c.Completed()
		}
		if done >= res.Submitted || time.Now().After(deadline) {
			res.Completed = done
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	res.Elapsed = time.Since(start)
	for _, c := range clients {
		res.Sojourns = append(res.Sojourns, c.Sojourns()...)
	}
	return res, nil
}
