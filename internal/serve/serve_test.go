package serve

import (
	"runtime"
	"testing"
	"time"

	"lmbalance/internal/cluster"
	"lmbalance/internal/obs"
	"lmbalance/internal/rng"
	"lmbalance/internal/workload"
)

// quickSpec is a small, fast serving cluster for the e2e tests: 4
// nodes over real TCP, a 200µs service clock, deterministic seed.
func quickSpec(noBalance bool) ClusterSpec {
	return ClusterSpec{
		N: 4, Delta: 1, F: 1.2,
		ConP:         1.0,
		StepInterval: 200 * time.Microsecond,
		Seed:         42,
		NoBalance:    noBalance,
	}
}

// waitGoroutines polls until the goroutine count is back at or below
// the baseline (the runtime retires netpoll helpers lazily).
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 { // small slack for runtime-internal helpers
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServeEndToEnd drives a skewed open-loop workload at a 4-node TCP
// cluster and audits the full accounting chain: every submission
// accepted, every unit completed, every CDone delivered, packet and
// job conservation intact at shutdown.
func TestServeEndToEnd(t *testing.T) {
	before := runtime.NumGoroutine()
	sc, err := StartServeCluster(quickSpec(false))
	if err != nil {
		t.Fatal(err)
	}

	env := workload.RateEnvelope{
		{Dur: 150 * time.Millisecond, Rate: 600},
		{Dur: 100 * time.Millisecond, Rate: 1200},
	}
	spec := workload.ArrivalSpec{
		Env:     env,
		Demand:  workload.BoundedPareto{Alpha: 1.5, Lo: 1, Hi: 20},
		Horizon: 500 * time.Millisecond,
	}
	arrivals, err := spec.Schedule(rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) == 0 {
		t.Fatal("empty schedule")
	}

	res, err := Drive(sc.Addrs(), arrivals, LoadSpec{HotFrac: 0.75, HotN: 1}, 11, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Submitted {
		t.Errorf("completed %d of %d submitted", res.Completed, res.Submitted)
	}
	if len(res.Sojourns) != int(res.Completed) {
		t.Errorf("%d sojourns for %d completions", len(res.Sojourns), res.Completed)
	}
	for _, s := range res.Sojourns {
		if s < 0 {
			t.Fatalf("negative sojourn %v", s)
		}
	}

	cres, stats, err := sc.DrainAndStop(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if stats.JobsAccepted != res.Submitted {
		t.Errorf("servers accepted %d jobs, clients submitted %d", stats.JobsAccepted, res.Submitted)
	}
	if stats.UnitsCompleted != stats.UnitsAccepted {
		t.Errorf("units completed %d != accepted %d", stats.UnitsCompleted, stats.UnitsAccepted)
	}
	if stats.InflightUnits != 0 {
		t.Errorf("in-flight units %d at shutdown", stats.InflightUnits)
	}
	if stats.DonesDropped != 0 {
		t.Errorf("%d CDones dropped with healthy clients", stats.DonesDropped)
	}
	if !cres.Conserved() {
		t.Error("packet conservation violated")
	}
	if !cres.JobsConserved() {
		t.Errorf("job conservation violated: ingested %d, done %d, held %d",
			cres.Ingested(), cres.UnitsDone(), cres.RecordsHeld())
	}
	if cres.Ingested() != stats.UnitsAccepted {
		t.Errorf("cluster ingested %d, servers accepted %d units", cres.Ingested(), stats.UnitsAccepted)
	}
	if cres.TotalLoad() != 0 {
		t.Errorf("residual load %d after drain", cres.TotalLoad())
	}

	waitGoroutines(t, before)
}

// TestServeClientDisconnect kills a client mid-stream: its accepted
// jobs must still run to completion server-side (their CDones dropped,
// counted), conservation must hold, and nothing may leak.
func TestServeClientDisconnect(t *testing.T) {
	before := runtime.NumGoroutine()
	sc, err := StartServeCluster(quickSpec(false))
	if err != nil {
		t.Fatal(err)
	}
	addrs := sc.Addrs()

	// The doomed client floods node 0 then vanishes without reading a
	// single completion.
	doomed, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	const doomedJobs = 200
	for i := 0; i < doomedJobs; i++ {
		if err := doomed.Submit(3); err != nil {
			t.Fatalf("doomed submit %d: %v", i, err)
		}
	}
	if err := doomed.Close(); err != nil {
		t.Fatal(err)
	}

	// A healthy client keeps the cluster honest on another node.
	healthy, err := Dial(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	const healthyJobs = 50
	for i := 0; i < healthyJobs; i++ {
		if err := healthy.Submit(2); err != nil {
			t.Fatalf("healthy submit %d: %v", i, err)
		}
	}

	cres, stats, err := sc.DrainAndStop(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(doomedJobs + healthyJobs); stats.JobsAccepted != want {
		t.Errorf("accepted %d jobs, want %d", stats.JobsAccepted, want)
	}
	// Every unit completes even though most completions had no client
	// left to hear about them.
	if stats.UnitsCompleted != stats.UnitsAccepted {
		t.Errorf("units completed %d != accepted %d", stats.UnitsCompleted, stats.UnitsAccepted)
	}
	if stats.JobsCompleted != stats.JobsAccepted {
		t.Errorf("jobs completed %d != accepted %d", stats.JobsCompleted, stats.JobsAccepted)
	}
	if !cres.Conserved() || !cres.JobsConserved() {
		t.Errorf("conservation violated after disconnect: packets=%v jobs=%v",
			cres.Conserved(), cres.JobsConserved())
	}
	if got := healthy.Completed(); got != healthyJobs {
		t.Errorf("healthy client saw %d completions, want %d", got, healthyJobs)
	}
	if err := healthy.Close(); err != nil {
		t.Fatal(err)
	}

	waitGoroutines(t, before)
}

// TestServeBackpressureSmallQueue exercises the blocking ingest path:
// a burst far larger than the ingest buffer must be absorbed without
// loss (the reader blocks, TCP pushes back, everything completes).
func TestServeBackpressureBurst(t *testing.T) {
	before := runtime.NumGoroutine()
	sc, err := StartServeCluster(quickSpec(false))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(sc.Addrs()[0])
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 3000 // 3× ingestDepth
	for i := 0; i < jobs; i++ {
		if err := c.Submit(1); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	cres, stats, err := sc.DrainAndStop(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if stats.UnitsCompleted != jobs {
		t.Errorf("completed %d units, want %d", stats.UnitsCompleted, jobs)
	}
	if !cres.Conserved() || !cres.JobsConserved() {
		t.Error("conservation violated under burst")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, before)
}

// TestServeTraceReplay replays a deterministic tracefile schedule
// through the serving path: pinned arrivals land on their recorded
// nodes and the whole trace completes.
func TestServeTraceReplay(t *testing.T) {
	const n, steps = 4, 300
	r := rng.New(99)
	var events []workload.TraceEvent
	for p := 0; p < n; p++ {
		for s := 0; s < steps; s++ {
			if r.Bernoulli(0.3) {
				events = append(events, workload.TraceEvent{Step: s, Proc: p, Action: workload.Generate})
			}
		}
	}
	tr, err := workload.NewTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	arrivals, err := workload.TraceArrivals(tr, 500*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) == 0 {
		t.Skip("trace generated no arrivals")
	}
	for _, a := range arrivals {
		if a.Node < 0 || a.Node >= n {
			t.Fatalf("trace arrival pinned out of range: %d", a.Node)
		}
	}

	sc, err := StartServeCluster(quickSpec(false))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Drive(sc.Addrs(), arrivals, LoadSpec{}, 1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Submitted {
		t.Errorf("completed %d of %d replayed jobs", res.Completed, res.Submitted)
	}
	cres, _, err := sc.DrainAndStop(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !cres.Conserved() || !cres.JobsConserved() {
		t.Error("conservation violated on trace replay")
	}
}

// TestServeNoBalanceStillCompletes checks the control arm: with
// balancing off, a hot node must still finish its backlog alone.
func TestServeNoBalanceStillCompletes(t *testing.T) {
	sc, err := StartServeCluster(quickSpec(true))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(sc.Addrs()[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := c.Submit(2); err != nil {
			t.Fatal(err)
		}
	}
	cres, stats, err := sc.DrainAndStop(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if stats.UnitsCompleted != 200 {
		t.Errorf("completed %d units, want 200", stats.UnitsCompleted)
	}
	if !cres.Conserved() || !cres.JobsConserved() {
		t.Error("conservation violated with balancing off")
	}
	// Balancing never ran, so nothing migrated: every unit was done
	// locally on node 0.
	if cres.Nodes[0].UnitsDone != 200 {
		t.Errorf("node 0 completed %d units locally, want 200", cres.Nodes[0].UnitsDone)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLoadSpecTarget checks the hot-node policy's arithmetic.
func TestLoadSpecTarget(t *testing.T) {
	r := rng.New(5)
	const n = 8
	spec := LoadSpec{HotFrac: 0.7, HotN: 2}
	hot := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		tgt := spec.Target(r, n)
		if tgt < 0 || tgt >= n {
			t.Fatalf("target %d out of range", tgt)
		}
		if tgt < spec.HotN {
			hot++
		}
	}
	frac := float64(hot) / draws
	if frac < 0.65 || frac > 0.75 {
		t.Errorf("hot fraction %.3f, want ≈0.70", frac)
	}
	// Degenerate specs fall back to uniform.
	uni := LoadSpec{}
	for i := 0; i < 100; i++ {
		if tgt := uni.Target(r, n); tgt < 0 || tgt >= n {
			t.Fatalf("uniform target %d out of range", tgt)
		}
	}
}

// TestQuantile pins the exact-quantile helper.
func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

var _ = cluster.JobOp // keep the cluster import honest if tests shrink

// TestJourneyDecomposition drives the quick cluster with a registry and
// audits the tentpole invariant of journey tracing: every completed
// unit's sojourn decomposes into ingest_wait + queue + transfer +
// service, so the component histograms' sums must add up to the
// per-unit sojourn histogram's sum (within a clamping tolerance), the
// hops histogram must hold one observation per job, and the /jobs ring
// must hold samples whose own components sum to their sojourn.
func TestJourneyDecomposition(t *testing.T) {
	reg := obs.NewRegistry()
	spec := quickSpec(false)
	spec.Obs = reg
	sc, err := StartServeCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	arrivals, err := workload.ArrivalSpec{
		Env:     workload.RateEnvelope{{Dur: 300 * time.Millisecond, Rate: 800}},
		Demand:  workload.BoundedPareto{Alpha: 1.5, Lo: 1, Hi: 20},
		Horizon: 300 * time.Millisecond,
	}.Schedule(rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Drive(sc.Addrs(), arrivals, LoadSpec{HotFrac: 0.75, HotN: 1}, 11, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sc.DrainAndStop(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	var compSum, unitSum float64
	var unitCount, hopJobs, ringTotal int64
	for i, s := range sc.Servers {
		unit := reg.Histogram(UnitSojournMetric(i), obs.SojournBuckets)
		unitCount += unit.Count()
		unitSum += unit.Sum()
		for _, c := range []string{"ingest_wait", "queue", "transfer", "service"} {
			h := reg.Histogram(JourneyMetric(i, c), obs.SojournBuckets)
			if h.Count() != unit.Count() {
				t.Errorf("node %d %s: %d observations, unit sojourn has %d", i, c, h.Count(), unit.Count())
			}
			compSum += h.Sum()
		}
		hopJobs += reg.Histogram(HopsMetric(i), HopBuckets).Count()
		ringTotal += s.Journeys().Total()
	}
	if unitCount == 0 {
		t.Fatal("no units observed in the journey histograms")
	}
	if hopJobs != res.Completed {
		t.Errorf("hops histogram holds %d jobs, %d completed", hopJobs, res.Completed)
	}
	if ringTotal != res.Completed {
		t.Errorf("journey rings saw %d jobs, %d completed", ringTotal, res.Completed)
	}
	// The components must reconstruct the per-unit sojourn: the split is
	// exact by construction, up to the zero-clamp against clock skew.
	if rel := (compSum - unitSum) / unitSum; rel < -0.05 || rel > 0.05 {
		t.Errorf("component sum %.4fs vs unit sojourn sum %.4fs (rel %.3f), decomposition broken",
			compSum, unitSum, rel)
	}

	// Ring samples: sane shapes, components close to the job sojourn for
	// single-unit stamped jobs.
	for _, s := range sc.Servers {
		for _, j := range s.Journeys().Snapshot() {
			if !j.Stamped {
				t.Fatalf("unstamped journey in an all-v3 cluster: %+v", j)
			}
			if j.Sojourn < 0 || j.IngestWait < 0 || j.Queue < 0 || j.Transfer < 0 || j.Service < 0 {
				t.Fatalf("negative journey field: %+v", j)
			}
			if j.Units == 1 {
				sum := j.IngestWait + j.Queue + j.Transfer + j.Service
				if diff := sum - j.Sojourn; diff < -0.01 || diff > 0.01 {
					t.Errorf("single-unit journey components sum %.6fs vs sojourn %.6fs: %+v", sum, j.Sojourn, j)
				}
			}
		}
	}
}

// TestIngestHWMAndDropCounterRegistered is the regression test for the
// serve-layer pressure metrics: the ingest-channel high-water mark and
// the completion-drop counter must be registered, visible in /metrics
// form, and move when the respective pressure occurs.
func TestIngestHWMAndDropCounterRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := NewServer(3, "127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Nobody drains s.ingest here (no node attached): submissions pile
	// up in the channel and the high-water mark must track the depth.
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const jobs = 5
	for i := 0; i < jobs; i++ {
		if err := c.Submit(1); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for reg.Gauge(`serve_ingest_hwm{node="3"}`).Value() < jobs {
		if time.Now().After(deadline) {
			t.Fatalf("ingest HWM %d after %d undrained submissions",
				reg.Gauge(`serve_ingest_hwm{node="3"}`).Value(), jobs)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Completion drops: complete a job whose client connection is dead.
	// The CDone has nowhere to go; the registered counter must see it.
	var sub cluster.Submit
	select {
	case sub = <-s.ingest:
	case <-time.After(2 * time.Second):
		t.Fatal("submission never reached the ingest channel")
	}
	s.mu.Lock()
	conn := s.jobs[sub.ID].conn
	s.mu.Unlock()
	c.Close()
	select {
	case <-conn.dead: // server has noticed the disconnect
	case <-time.After(5 * time.Second):
		t.Fatal("server never noticed the client disconnect")
	}
	s.complete(sub.ID, cluster.Journey{})
	if got := reg.Counter(`serve_dones_dropped_total{node="3"}`).Value(); got != 1 {
		t.Fatalf("done-drop counter %d after completing for a dead client, want 1", got)
	}
}
