package serve

import (
	"fmt"
	"time"

	"lmbalance/internal/cluster"
	"lmbalance/internal/flight"
	"lmbalance/internal/obs"
	"lmbalance/internal/wire"
)

// ClusterSpec shapes a serving cluster for StartServeCluster: N nodes,
// each with a TCP (or in-process loopback) cluster transport, a client
// front-end listener, zero spontaneous generation, and wall-clock
// stepping so ConP/StepInterval is the node's service capacity in
// units per second.
type ClusterSpec struct {
	N     int
	Delta int
	F     float64
	// ConP is the per-step consume probability; with StepInterval it
	// sets each node's service rate ConP/StepInterval units/second.
	ConP         float64
	StepInterval time.Duration
	Seed         uint64
	// NoBalance disables balancing initiation (the control arm).
	NoBalance bool
	Pace      cluster.PaceMode
	// Loopback selects the in-process transport instead of TCP for the
	// cluster links (client submission is always real TCP).
	Loopback bool
	// Obs, when non-nil, aggregates node and server metrics.
	Obs *obs.Registry
	// Flight, when non-empty (length N), gives node i a flight recorder:
	// the harness wraps node i's cluster transport with Flight[i].Tap and
	// hands the recorder to the node for local-decision records. Nil
	// entries leave that node unrecorded. The caller owns the recorders
	// (close them after DrainAndStop).
	Flight []*flight.Recorder
}

// ServeCluster is a running serving cluster: N nodes balancing among
// themselves, each fronted by a client Server, plus the machinery to
// stop the run and collect its accounting.
type ServeCluster struct {
	Servers []*Server
	stop    chan struct{}
	resCh   chan runOutcome
}

type runOutcome struct {
	res *cluster.Result
	err error
}

// StartServeCluster brings up the cluster and its front-ends, runs the
// node loops in the background, and returns once every client listener
// is accepting.
func StartServeCluster(spec ClusterSpec) (*ServeCluster, error) {
	if spec.N < 2 {
		return nil, fmt.Errorf("serve: need at least 2 nodes, got %d", spec.N)
	}
	if spec.StepInterval <= 0 {
		return nil, fmt.Errorf("serve: StepInterval must be positive (it is the service clock)")
	}
	if len(spec.Flight) > 0 && len(spec.Flight) != spec.N {
		return nil, fmt.Errorf("serve: %d flight recorders for %d nodes", len(spec.Flight), spec.N)
	}
	transports := make([]wire.Transport, spec.N)
	if spec.Loopback {
		lnet := wire.NewLoopback(spec.N)
		for i := range transports {
			transports[i] = lnet.Transport(i)
		}
	} else {
		ts, err := wire.NewLocalCluster(spec.N)
		if err != nil {
			return nil, fmt.Errorf("serve: cluster transport: %w", err)
		}
		for i, t := range ts {
			transports[i] = t
		}
	}
	for i := range transports {
		if len(spec.Flight) > 0 {
			transports[i] = spec.Flight[i].Tap(transports[i])
		}
	}

	servers := make([]*Server, spec.N)
	hooks := make([]*cluster.ServeHooks, spec.N)
	closeAll := func() {
		for _, s := range servers {
			if s != nil {
				s.Close()
			}
		}
	}
	for i := range servers {
		s, err := NewServer(i, "127.0.0.1:0", spec.Obs)
		if err != nil {
			closeAll()
			for _, tr := range transports {
				tr.Close()
			}
			return nil, err
		}
		servers[i] = s
		hooks[i] = s.Hooks()
	}

	stop := make(chan struct{})
	nodes, err := cluster.NewNodes(cluster.ClusterConfig{
		N: spec.N, Delta: spec.Delta, F: spec.F,
		// Steps is effectively unbounded; the run ends via Stop.
		Steps: 1 << 30,
		GenP:  []float64{0}, ConP: []float64{spec.ConP},
		Seed: spec.Seed, Pace: spec.Pace,
		Obs:          spec.Obs,
		StepInterval: spec.StepInterval,
		NoBalance:    spec.NoBalance,
		Stop:         stop,
		ServePerNode: hooks,
		Flight:       spec.Flight,
	}, transports)
	if err != nil {
		closeAll()
		return nil, err
	}
	sc := &ServeCluster{Servers: servers, stop: stop, resCh: make(chan runOutcome, 1)}
	go func() {
		res, err := cluster.RunNodes(nodes)
		sc.resCh <- runOutcome{res, err}
	}()
	return sc, nil
}

// Addrs returns the client-facing addresses, indexed by node.
func (sc *ServeCluster) Addrs() []string {
	out := make([]string, len(sc.Servers))
	for i, s := range sc.Servers {
		out[i] = s.Addr()
	}
	return out
}

// TotalStats sums the per-node server accounting.
func (sc *ServeCluster) TotalStats() Stats {
	var t Stats
	for _, s := range sc.Servers {
		st := s.Stats()
		t.JobsAccepted += st.JobsAccepted
		t.JobsCompleted += st.JobsCompleted
		t.UnitsAccepted += st.UnitsAccepted
		t.UnitsCompleted += st.UnitsCompleted
		t.DonesDropped += st.DonesDropped
		t.InflightUnits += st.InflightUnits
	}
	return t
}

// DrainAndStop waits — up to timeout — for every accepted unit to
// complete, then stops the cluster, shuts the front-ends, and returns
// the cluster-side result. The drain must come first: once Stop fires,
// nodes fast-forward into shutdown and ingested-but-unserved units
// would be stranded as held records. A run that fails to drain still
// stops cleanly; the caller sees the imbalance in the returned
// accounting (Result.RecordsHeld > 0, InflightUnits > 0).
func (sc *ServeCluster) DrainAndStop(timeout time.Duration) (*cluster.Result, Stats, error) {
	deadline := time.Now().Add(timeout)
	// Quiescence, not just equality: right after the last client write
	// the servers may not have read the submissions yet, so completed ==
	// accepted can hold vacuously. Require the balance to hold across a
	// stability window with no new acceptances before declaring drained.
	var lastAccepted int64 = -1
	stableSince := time.Now()
	for {
		t := sc.TotalStats()
		balanced := t.UnitsCompleted >= t.UnitsAccepted
		if !balanced || t.UnitsAccepted != lastAccepted {
			lastAccepted = t.UnitsAccepted
			stableSince = time.Now()
		}
		if balanced && time.Since(stableSince) >= 50*time.Millisecond {
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(sc.stop)
	out := <-sc.resCh
	final := sc.TotalStats()
	for _, s := range sc.Servers {
		s.Close()
	}
	return out.res, final, out.err
}
