package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
)

// JourneySample is one completed job's journey, as sampled into the
// /jobs ring. Timestamps are server-side unix nanos. Sojourn is the
// job's end-to-end time (submit → last unit done); the component
// fields are per-unit means over the job's units, each the mean of a
// decomposition that sums to the unit's own sojourn:
//
//	ingest_wait  submit accepted → node ingested the units
//	queue        sitting in some node's backlog awaiting a consume draw
//	transfer     on the wire between nodes (accumulated across hops)
//	service      consume draw → completion landed back at the origin
//
// Hops is the maximum JobMove hop count any of the job's units took.
// Jobs whose units rode frames from pre-v3 peers have no stamps; their
// component fields are zero and Stamped is false.
type JourneySample struct {
	Node       int     `json:"node"`
	Job        uint64  `json:"job"` // origin-local id
	Tag        uint64  `json:"tag"` // the client's id for the job
	Units      int     `json:"units"`
	Hops       int     `json:"hops"`
	SubmitNS   int64   `json:"submit_ns"`
	DoneNS     int64   `json:"done_ns"`
	Sojourn    float64 `json:"sojourn_s"`
	IngestWait float64 `json:"ingest_wait_s"`
	Queue      float64 `json:"queue_s"`
	Transfer   float64 `json:"transfer_s"`
	Service    float64 `json:"service_s"`
	Stamped    bool    `json:"stamped"`
}

// JourneyLog is a fixed-capacity ring of recently completed journeys,
// the store behind the /jobs debug endpoint — JSONL export, newest
// overwrites oldest, same shape as the obs tracer's /trace.
type JourneyLog struct {
	mu    sync.Mutex
	buf   []JourneySample
	next  int
	total int64
}

// DefaultJourneyCapacity is the ring size NewServer uses.
const DefaultJourneyCapacity = 256

// NewJourneyLog returns a ring holding the last capacity samples
// (capacity < 1 falls back to DefaultJourneyCapacity).
func NewJourneyLog(capacity int) *JourneyLog {
	if capacity < 1 {
		capacity = DefaultJourneyCapacity
	}
	return &JourneyLog{buf: make([]JourneySample, 0, capacity)}
}

// Add records one completed journey.
func (l *JourneyLog) Add(s JourneySample) {
	l.mu.Lock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, s)
	} else {
		l.buf[l.next] = s
		l.next = (l.next + 1) % cap(l.buf)
	}
	l.total++
	l.mu.Unlock()
}

// Total returns the number of journeys ever added (not just retained).
func (l *JourneyLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the retained samples, oldest first.
func (l *JourneyLog) Snapshot() []JourneySample {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]JourneySample, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// WriteJSONL writes the retained samples as JSON Lines, oldest first.
func (l *JourneyLog) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range l.Snapshot() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// JourneysHandler serves the merged journeys of one or more logs as
// JSONL ordered by completion time — the /jobs debug endpoint. With
// several logs (one per node in a spawned cluster) the merge is a
// cluster-wide view of recent completions.
func JourneysHandler(logs ...*JourneyLog) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var all []JourneySample
		for _, l := range logs {
			if l != nil {
				all = append(all, l.Snapshot()...)
			}
		}
		sort.SliceStable(all, func(i, j int) bool { return all[i].DoneNS < all[j].DoneNS })
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		enc := json.NewEncoder(w)
		for _, s := range all {
			if enc.Encode(s) != nil {
				return
			}
		}
	}
}
