package serve

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync"

	"lmbalance/internal/wire"
)

// Client is one connection to a node's serving front-end. Submit is
// safe for concurrent use; a reader goroutine collects CAccepted and
// CDone frames and accumulates per-job sojourns from the server's own
// timestamps (so the measurement needs no clock sync with the server).
type Client struct {
	nc net.Conn

	wmu sync.Mutex // serializes Submit writers
	bw  *bufio.Writer
	buf []byte

	mu        sync.Mutex
	nextTag   uint64
	submitted int64
	accepted  int64
	completed int64
	sojourns  []float64 // seconds, server-stamped, one per completed job
	readErr   error

	done sync.WaitGroup
}

// Dial connects to a Server at addr.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	c := &Client{nc: nc, bw: bufio.NewWriter(nc)}
	c.done.Add(1)
	go c.readLoop()
	return c, nil
}

// Submit sends one job of the given number of unit work items (values
// below 1 are submitted as 1, matching the server's clamp).
func (c *Client) Submit(units int) error {
	if units < 1 {
		units = 1
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.mu.Lock()
	c.nextTag++
	tag := c.nextTag
	c.submitted++
	c.mu.Unlock()
	c.buf = wire.AppendCFrame(c.buf[:0], wire.CMsg{Kind: wire.CSubmit, Job: tag, Units: units})
	if _, err := c.bw.Write(c.buf); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *Client) readLoop() {
	defer c.done.Done()
	br := bufio.NewReader(c.nc)
	for {
		m, _, err := wire.ReadCFrame(br)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.mu.Unlock()
			return
		}
		switch m.Kind {
		case wire.CAccepted:
			c.mu.Lock()
			c.accepted++
			c.mu.Unlock()
		case wire.CDone:
			c.mu.Lock()
			c.completed++
			c.sojourns = append(c.sojourns, float64(m.DoneNS-m.SubmitNS)/1e9)
			c.mu.Unlock()
		}
	}
}

// Submitted returns the number of jobs sent so far.
func (c *Client) Submitted() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.submitted
}

// Accepted returns the number of acceptance acks received so far.
func (c *Client) Accepted() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.accepted
}

// Completed returns the number of completion notifications received.
func (c *Client) Completed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.completed
}

// Sojourns returns a copy of the per-job server-observed sojourns, in
// seconds, in completion order.
func (c *Client) Sojourns() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]float64, len(c.sojourns))
	copy(out, c.sojourns)
	return out
}

// Close tears down the connection and waits for the reader to exit.
func (c *Client) Close() error {
	err := c.nc.Close()
	c.done.Wait()
	return err
}

// Quantile returns the exact q-quantile (0 ≤ q ≤ 1) of a sample set,
// sorting a copy. NaN-free inputs assumed; empty input returns 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	if i < 0 {
		i = 0
	}
	if i > len(s)-1 {
		i = len(s) - 1
	}
	return s[i]
}
