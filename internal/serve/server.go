// Package serve is the job-serving front-end of the cluster runtime:
// clients submit jobs to any node over TCP, submissions become load
// units the balancing protocol may move anywhere, and completion
// notifications stream back with end-to-end sojourn timestamps.
//
// Each cluster node gets one Server: a TCP listener on its own client
// port, separate from the node's cluster transport. A client connection
// speaks the wire client codec (wire.CSubmit / CAccepted / CDone). A
// CSubmit is assigned an origin-local job id, acknowledged, and pushed
// into the node's ingest channel (cluster.ServeHooks); the node turns
// it into load units tagged with job records. When the last unit of a
// job has been consumed — on any node — the node calls back into
// complete and the Server streams CDone to the submitting client with
// both server-side timestamps.
//
// The node goroutine must never block on a slow client: complete only
// touches the job table under a mutex and hands the CDone to the
// connection's writer goroutine through a buffered queue. If the queue
// is full (or the client is gone) the notification is dropped and
// counted — the job is still complete, the server's accounting is
// intact, only that client's stream is lossy. Conversely a client that
// disconnects mid-stream just stops receiving: its submitted jobs run
// to completion and the cluster's shutdown conservation audit is
// unaffected (see TestServeClientDisconnect).
package serve

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"lmbalance/internal/cluster"
	"lmbalance/internal/obs"
	"lmbalance/internal/wire"
)

// ingestDepth is the submission buffer between the reader goroutines
// and the node loop. When it fills, readers block — per-connection TCP
// backpressure, the open-loop generator's signal that the node is
// saturated at ingest (not service) level.
const ingestDepth = 1024

// outboxDepth is the per-connection completion-notification queue. The
// node-side complete never blocks on it: overflow drops the CDone and
// counts it.
const outboxDepth = 4096

// Server is one node's client-facing front-end.
type Server struct {
	node   int
	ln     net.Listener
	ingest chan cluster.Submit
	quit   chan struct{}
	wg     sync.WaitGroup

	mu     sync.Mutex
	closed bool
	nextID uint64
	jobs   map[uint64]*job
	conns  map[*srvConn]struct{}

	jobsAccepted   obs.Counter
	jobsCompleted  obs.Counter
	unitsAccepted  obs.Counter
	unitsCompleted obs.Counter
	donesDropped   obs.Counter
	inflightUnits  obs.Gauge      // units accepted, not yet completed
	ingestHWM      obs.Gauge      // ingest-channel depth high-water mark
	sojourn        *obs.Histogram // per-job end-to-end seconds, log buckets

	// Journey decomposition: per-unit sojourn split into its additive
	// components (see JourneySample for the taxonomy), a per-unit
	// whole-sojourn histogram the components must sum to, and the
	// hops-per-job distribution. All log-bucketed except hops.
	compIngestWait *obs.Histogram
	compQueue      *obs.Histogram
	compTransfer   *obs.Histogram
	compService    *obs.Histogram
	unitSojourn    *obs.Histogram
	hopsHist       *obs.Histogram
	journeys       *JourneyLog
}

// job is one accepted submission awaiting its remaining units.
type job struct {
	conn      *srvConn
	tag       uint64 // the client's id for the job, echoed on CDone
	units     int
	unitsLeft int
	at        time.Time
	submitNS  int64
	// journey accumulators across the job's units
	maxHops             int
	ingestWaitS, queueS float64
	transferS, serviceS float64
	stampedUnits        int
}

// srvConn is one client connection: a reader goroutine parsing frames
// and a writer goroutine draining the outbox.
type srvConn struct {
	nc   net.Conn
	out  chan wire.CMsg
	dead chan struct{}
	once sync.Once
}

func (c *srvConn) close() {
	c.once.Do(func() {
		close(c.dead)
		c.nc.Close()
	})
}

// NewServer listens on addr (e.g. "127.0.0.1:0") as node's serving
// front-end and starts accepting clients. reg, when non-nil, gets the
// per-node serving metrics (serve_sojourn_seconds histogram, in-flight
// gauge, accept/complete counters); the Server keeps its own live
// counters either way.
func NewServer(node int, addr string, reg *obs.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: node %d listen %s: %w", node, addr, err)
	}
	s := &Server{
		node:   node,
		ln:     ln,
		ingest: make(chan cluster.Submit, ingestDepth),
		quit:   make(chan struct{}),
		jobs:   make(map[uint64]*job),
		conns:  make(map[*srvConn]struct{}),
	}
	s.journeys = NewJourneyLog(DefaultJourneyCapacity)
	if reg != nil {
		s.sojourn = reg.Histogram(SojournMetric(node), obs.SojournBuckets)
		label := fmt.Sprintf(`serve_jobs_inflight_units{node="%d"}`, node)
		reg.Attach(label, &s.inflightUnits)
		reg.Attach(fmt.Sprintf(`serve_jobs_accepted_total{node="%d"}`, node), &s.jobsAccepted)
		reg.Attach(fmt.Sprintf(`serve_jobs_completed_total{node="%d"}`, node), &s.jobsCompleted)
		reg.Attach(fmt.Sprintf(`serve_units_accepted_total{node="%d"}`, node), &s.unitsAccepted)
		reg.Attach(fmt.Sprintf(`serve_units_completed_total{node="%d"}`, node), &s.unitsCompleted)
		reg.Attach(fmt.Sprintf(`serve_dones_dropped_total{node="%d"}`, node), &s.donesDropped)
		reg.Attach(fmt.Sprintf(`serve_ingest_hwm{node="%d"}`, node), &s.ingestHWM)
		s.compIngestWait = reg.Histogram(JourneyMetric(node, "ingest_wait"), obs.SojournBuckets)
		s.compQueue = reg.Histogram(JourneyMetric(node, "queue"), obs.SojournBuckets)
		s.compTransfer = reg.Histogram(JourneyMetric(node, "transfer"), obs.SojournBuckets)
		s.compService = reg.Histogram(JourneyMetric(node, "service"), obs.SojournBuckets)
		s.unitSojourn = reg.Histogram(UnitSojournMetric(node), obs.SojournBuckets)
		s.hopsHist = reg.Histogram(HopsMetric(node), HopBuckets)
	} else {
		s.sojourn = obs.NewHistogram(obs.SojournBuckets)
		s.compIngestWait = obs.NewHistogram(obs.SojournBuckets)
		s.compQueue = obs.NewHistogram(obs.SojournBuckets)
		s.compTransfer = obs.NewHistogram(obs.SojournBuckets)
		s.compService = obs.NewHistogram(obs.SojournBuckets)
		s.unitSojourn = obs.NewHistogram(obs.SojournBuckets)
		s.hopsHist = obs.NewHistogram(HopBuckets)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// SojournMetric returns the registry name of one node's sojourn
// histogram.
func SojournMetric(node int) string {
	return fmt.Sprintf(`serve_sojourn_seconds{node="%d"}`, node)
}

// JourneyMetric returns the registry name of one node's per-unit
// journey-component histogram (component is one of "ingest_wait",
// "queue", "transfer", "service").
func JourneyMetric(node int, component string) string {
	return fmt.Sprintf(`serve_journey_seconds{component=%q,node="%d"}`, component, node)
}

// UnitSojournMetric returns the registry name of one node's per-unit
// whole-sojourn histogram — the sum the journey components decompose.
func UnitSojournMetric(node int) string {
	return fmt.Sprintf(`serve_unit_sojourn_seconds{node="%d"}`, node)
}

// HopsMetric returns the registry name of one node's hops-per-job
// histogram.
func HopsMetric(node int) string {
	return fmt.Sprintf(`serve_job_hops{node="%d"}`, node)
}

// HopBuckets bound the hops-per-job histogram: most units complete
// where they ingested (0 hops) or one migration away, with a tail for
// records that bounce during long overload episodes.
var HopBuckets = []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32}

// Addr returns the listener's address for clients to dial.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Hooks returns the node-side connection: the ingest stream and the
// per-unit completion callback, ready for cluster.Config.Serve.
func (s *Server) Hooks() *cluster.ServeHooks {
	return &cluster.ServeHooks{Ingest: s.ingest, Complete: s.complete}
}

// Sojourn exposes the live per-job sojourn histogram (seconds).
func (s *Server) Sojourn() *obs.Histogram { return s.sojourn }

// Journeys exposes the ring of recently completed journeys backing the
// /jobs debug endpoint.
func (s *Server) Journeys() *JourneyLog { return s.journeys }

// Stats is a Server's cumulative accounting.
type Stats struct {
	JobsAccepted   int64
	JobsCompleted  int64
	UnitsAccepted  int64
	UnitsCompleted int64
	DonesDropped   int64 // CDone frames lost to slow or vanished clients
	InflightUnits  int64
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		JobsAccepted:   s.jobsAccepted.Value(),
		JobsCompleted:  s.jobsCompleted.Value(),
		UnitsAccepted:  s.unitsAccepted.Value(),
		UnitsCompleted: s.unitsCompleted.Value(),
		DonesDropped:   s.donesDropped.Value(),
		InflightUnits:  s.inflightUnits.Value(),
	}
}

// Close stops accepting, disconnects every client, and waits for the
// connection goroutines to exit. Jobs still in flight in the cluster
// stay in the table but their CDones have nowhere to go; call Close
// only after the run has drained (or when abandoning it).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	close(s.quit)
	err := s.ln.Close()
	for _, c := range conns {
		c.close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c := &srvConn{nc: nc, out: make(chan wire.CMsg, outboxDepth), dead: make(chan struct{})}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(2)
		go s.readLoop(c)
		go s.writeLoop(c)
	}
}

// readLoop parses one connection's submissions until the client hangs
// up or sends garbage.
func (s *Server) readLoop(c *srvConn) {
	defer s.wg.Done()
	defer c.close()
	br := bufio.NewReader(c.nc)
	for {
		m, _, err := wire.ReadCFrame(br)
		if err != nil {
			// EOF, reset, or a codec violation: either way this client is
			// done submitting. Its accepted jobs keep running.
			s.dropConn(c)
			return
		}
		if m.Kind != wire.CSubmit {
			s.dropConn(c)
			return
		}
		if !s.submit(c, m) {
			return // server closing
		}
	}
}

// submit registers one job and pushes its units into the node's ingest
// stream. The push may block — that is the backpressure path — but
// never deadlocks: a closing server aborts it via quit.
func (s *Server) submit(c *srvConn, m wire.CMsg) bool {
	units := m.Units
	if units < 1 {
		units = 1
	}
	now := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	s.nextID++
	id := s.nextID
	s.jobs[id] = &job{conn: c, tag: m.Job, units: units, unitsLeft: units, at: now, submitNS: now.UnixNano()}
	s.mu.Unlock()
	s.jobsAccepted.Inc()
	s.unitsAccepted.Add(int64(units))
	s.inflightUnits.Add(int64(units))
	// Ack first: the client's open-loop generator should see acceptance
	// latency, not queueing latency.
	s.enqueue(c, wire.CMsg{Kind: wire.CAccepted, Job: m.Job, Load: int(s.inflightUnits.Value())})
	select {
	case s.ingest <- cluster.Submit{ID: id, Units: units}:
		// High-water mark of the ingest buffer: how close the node came
		// to exerting TCP backpressure (depth == ingestDepth means it
		// did). Sampled after the send so an idle node reads 0.
		s.ingestHWM.Max(int64(len(s.ingest)))
		return true
	case <-s.quit:
		return false
	}
}

// complete is the node-side per-unit completion callback (runs on the
// node goroutine — must not block). It decomposes the unit's sojourn
// into its journey components and, on the job's last unit, samples the
// whole journey into the /jobs ring.
func (s *Server) complete(id uint64, jn cluster.Journey) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return
	}
	j.unitsLeft--
	done := j.unitsLeft == 0
	// Decompose this unit's sojourn. Every clock is server-side (origin
	// stamps ingest and done, consumer stamps consume), so the
	// components are deltas of comparable wall clocks; each is clamped
	// at zero against inter-node skew, and unstamped units (records
	// that rode pre-v3 frames) are skipped rather than observed as
	// nonsense.
	stamped := jn.IngestNS > 0 && jn.ConsumeNS > 0 && jn.DoneNS > 0
	var ingestWait, queue, transfer, service float64
	if stamped {
		ingestWait = clampSeconds(jn.IngestNS - j.submitNS)
		transfer = clampSeconds(jn.TransferNS)
		queue = clampSeconds(jn.ConsumeNS - jn.IngestNS - jn.TransferNS)
		service = clampSeconds(jn.DoneNS - jn.ConsumeNS)
		j.ingestWaitS += ingestWait
		j.queueS += queue
		j.transferS += transfer
		j.serviceS += service
		j.stampedUnits++
	}
	if jn.Hops > j.maxHops {
		j.maxHops = jn.Hops
	}
	if done {
		delete(s.jobs, id)
	}
	s.mu.Unlock()
	s.unitsCompleted.Inc()
	s.inflightUnits.Add(-1)
	if stamped {
		s.compIngestWait.Observe(ingestWait)
		s.compQueue.Observe(queue)
		s.compTransfer.Observe(transfer)
		s.compService.Observe(service)
		s.unitSojourn.Observe(clampSeconds(jn.DoneNS - j.submitNS))
	}
	if !done {
		return
	}
	s.jobsCompleted.Inc()
	s.hopsHist.Observe(float64(j.maxHops))
	now := time.Now()
	s.sojourn.Observe(now.Sub(j.at).Seconds())
	sample := JourneySample{
		Node: s.node, Job: id, Tag: j.tag, Units: j.units, Hops: j.maxHops,
		SubmitNS: j.submitNS, DoneNS: now.UnixNano(),
		Sojourn: now.Sub(j.at).Seconds(),
		Stamped: j.stampedUnits > 0,
	}
	if j.stampedUnits > 0 {
		per := 1 / float64(j.stampedUnits)
		sample.IngestWait = j.ingestWaitS * per
		sample.Queue = j.queueS * per
		sample.Transfer = j.transferS * per
		sample.Service = j.serviceS * per
	}
	s.journeys.Add(sample)
	s.enqueue(j.conn, wire.CMsg{Kind: wire.CDone, Job: j.tag, SubmitNS: j.submitNS, DoneNS: now.UnixNano()})
}

// clampSeconds converts a nanosecond delta to seconds, clamping
// negatives (inter-node clock skew) to zero.
func clampSeconds(ns int64) float64 {
	if ns <= 0 {
		return 0
	}
	return float64(ns) / 1e9
}

// enqueue hands a frame to the connection's writer without blocking;
// overflow and dead connections drop it (counted).
func (s *Server) enqueue(c *srvConn, m wire.CMsg) {
	select {
	case <-c.dead:
		s.donesDropped.Inc()
		return
	default:
	}
	select {
	case c.out <- m:
	default:
		s.donesDropped.Inc()
	}
}

// writeLoop drains one connection's outbox, flushing whenever the queue
// goes momentarily empty.
func (s *Server) writeLoop(c *srvConn) {
	defer s.wg.Done()
	bw := bufio.NewWriter(c.nc)
	var buf []byte
	for {
		select {
		case m := <-c.out:
			buf = wire.AppendCFrame(buf[:0], m)
			if _, err := bw.Write(buf); err != nil {
				c.close()
				return
			}
			if len(c.out) == 0 {
				if err := bw.Flush(); err != nil {
					c.close()
					return
				}
			}
		case <-c.dead:
			return
		}
	}
}

// dropConn forgets a finished connection (its writer exits via dead).
func (s *Server) dropConn(c *srvConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}
