// Package workload generates the load patterns that drive the simulator.
//
// The paper's model (§2) lets every processor, in each global time step,
// generate one load packet, consume one locally available packet, or do
// nothing — with no assumption about the distribution of those activities.
// A Pattern decides, per processor and per step, which of the three actions
// is attempted.
//
// The package implements the paper's §7 synthetic benchmark (random phases
// (gᵢ, cᵢ, startᵢ, endᵢ) drawn from global bounds), the §3 analysis models
// (one-processor-generator and one-processor-producer-consumer), and a few
// additional adversarial patterns (bursts, hotspots) used by the extension
// experiments. A deterministic scripted pattern supports unit tests.
package workload

import (
	"fmt"

	"lmbalance/internal/rng"
)

// Action is what a processor attempts in one global time step.
type Action int8

const (
	// Idle does nothing this step.
	Idle Action = iota
	// Generate creates one new load packet on the processor.
	Generate
	// Consume removes one load packet if any is available.
	Consume
	// GenerateAndConsume does both in one step (generate first). The §7
	// phase workload draws generation and consumption independently, so
	// both can occur in the same tick — §2 explicitly allows a constant
	// number of packets per time step.
	GenerateAndConsume
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case Idle:
		return "idle"
	case Generate:
		return "generate"
	case Consume:
		return "consume"
	case GenerateAndConsume:
		return "generate+consume"
	default:
		return fmt.Sprintf("Action(%d)", int8(a))
	}
}

// Pattern produces the action of processor proc at global time step t.
// Implementations draw all randomness from r so that runs are reproducible;
// a Pattern instance is used by a single simulation run at a time.
type Pattern interface {
	// Name identifies the pattern in experiment output.
	Name() string
	// Step returns the action processor proc attempts at time t.
	Step(proc, t int, r *rng.RNG) Action
}

// Sparse is an optional Pattern refinement for patterns whose activity is
// confined to a fixed small set of processors. The sharded engine uses it
// to step only the processors that can ever act, which is what makes the
// §3 one-producer model tractable at n = 10⁶ (8n global steps would
// otherwise cost 8n² pattern calls). A Sparse pattern must return Idle for
// every processor outside ActiveProcs at every step, and must not consume
// RNG state for those processors (both OneProducer and ProducerConsumer
// draw nothing for idle processors, so skipping them leaves every stream
// untouched).
type Sparse interface {
	Pattern
	// ActiveProcs returns the sorted, duplicate-free set of processors
	// that may ever return a non-Idle action.
	ActiveProcs() []int
}

// Phase is one activity window of a processor: between Start and End
// (inclusive) the processor generates with probability G and otherwise
// consumes with probability C, per step.
type Phase struct {
	G     float64 // generation probability
	C     float64 // consumption probability
	Start int     // first active step
	End   int     // last active step (inclusive)
}

// Phases is the paper's §7 synthetic benchmark. Each processor owns a list
// of phases; at step t the first phase containing t applies. Outside all
// phases the processor idles.
//
// The paper draws, for each processor, phases with gᵢ ∈ [g_l, g_h],
// cᵢ ∈ [c_l, c_h] and length endᵢ−startᵢ ∈ [len_l, len_h]; the large phase
// lengths make generation/consumption activity very inhomogeneous across
// the machine.
type Phases struct {
	name   string
	phases [][]Phase
}

// PhaseBounds are the global parameters (g_l, g_h, c_l, c_h, len_l, len_h)
// of the paper's workload description, plus the horizon to cover.
type PhaseBounds struct {
	GLow, GHigh     float64
	CLow, CHigh     float64
	LenLow, LenHigh int
	Horizon         int // phases are drawn with starts in [0, Horizon)
}

// PaperBounds returns the exact §7 parameter set: g∈[0.1,0.9], c∈[0.1,0.7],
// len∈[150,400] for a 500-step horizon.
func PaperBounds() PhaseBounds {
	return PhaseBounds{
		GLow: 0.1, GHigh: 0.9,
		CLow: 0.1, CHigh: 0.7,
		LenLow: 150, LenHigh: 400,
		Horizon: 500,
	}
}

// Validate checks the bounds for consistency.
func (b PhaseBounds) Validate() error {
	switch {
	case b.GLow < 0 || b.GHigh > 1 || b.GLow > b.GHigh:
		return fmt.Errorf("workload: invalid generation bounds [%v,%v]", b.GLow, b.GHigh)
	case b.CLow < 0 || b.CHigh > 1 || b.CLow > b.CHigh:
		return fmt.Errorf("workload: invalid consumption bounds [%v,%v]", b.CLow, b.CHigh)
	case b.LenLow < 1 || b.LenLow > b.LenHigh:
		return fmt.Errorf("workload: invalid length bounds [%d,%d]", b.LenLow, b.LenHigh)
	case b.Horizon < 1:
		return fmt.Errorf("workload: invalid horizon %d", b.Horizon)
	}
	return nil
}

// NewPhases draws a random phase plan for n processors from the bounds.
// Every processor receives consecutive random phases until the horizon is
// covered, so it is active for the whole run (as in the paper, where phases
// of length 150–400 tile the 500-step experiment).
func NewPhases(n int, b PhaseBounds, r *rng.RNG) (*Phases, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("workload: NewPhases with n=%d", n)
	}
	p := &Phases{
		name:   fmt.Sprintf("phases(g=[%g,%g],c=[%g,%g],len=[%d,%d])", b.GLow, b.GHigh, b.CLow, b.CHigh, b.LenLow, b.LenHigh),
		phases: make([][]Phase, n),
	}
	for i := 0; i < n; i++ {
		t := 0
		for t < b.Horizon {
			length := r.IntRange(b.LenLow, b.LenHigh)
			p.phases[i] = append(p.phases[i], Phase{
				G:     r.FloatRange(b.GLow, b.GHigh),
				C:     r.FloatRange(b.CLow, b.CHigh),
				Start: t,
				End:   t + length - 1,
			})
			t += length
		}
	}
	return p, nil
}

// NewPhasesExplicit builds a Phases pattern from caller-provided phase
// lists, one per processor. Used by tests and custom experiments.
func NewPhasesExplicit(name string, phases [][]Phase) *Phases {
	return &Phases{name: name, phases: phases}
}

// Name implements Pattern.
func (p *Phases) Name() string { return p.name }

// PhasesOf returns processor i's phase list (shared; do not modify).
func (p *Phases) PhasesOf(i int) []Phase { return p.phases[i] }

// Step implements Pattern: within an active phase, generation (probability
// G) and consumption (probability C) are drawn independently, exactly as
// §7 states — both can happen in one step.
func (p *Phases) Step(proc, t int, r *rng.RNG) Action {
	for _, ph := range p.phases[proc] {
		if t >= ph.Start && t <= ph.End {
			gen := r.Bernoulli(ph.G)
			con := r.Bernoulli(ph.C)
			switch {
			case gen && con:
				return GenerateAndConsume
			case gen:
				return Generate
			case con:
				return Consume
			default:
				return Idle
			}
		}
	}
	return Idle
}

// OneProducer is the §3 one-processor-generator model: processor 0
// generates one packet every step; nobody consumes. Overall system load
// grows steadily, exactly as in the analysis.
type OneProducer struct{}

// Name implements Pattern.
func (OneProducer) Name() string { return "one-producer" }

// Step implements Pattern.
func (OneProducer) Step(proc, t int, r *rng.RNG) Action {
	if proc == 0 {
		return Generate
	}
	return Idle
}

// ActiveProcs implements Sparse: only processor 0 ever acts.
func (OneProducer) ActiveProcs() []int { return []int{0} }

// ProducerConsumer is the §3 one-processor-producer-consumer model:
// processor 0 generates with probability genP and consumes with probability
// 1−genP; all other processors idle.
type ProducerConsumer struct {
	// GenP is the per-step probability that processor 0 generates (it
	// consumes otherwise).
	GenP float64
}

// Name implements Pattern.
func (p ProducerConsumer) Name() string {
	return fmt.Sprintf("producer-consumer(p=%g)", p.GenP)
}

// Step implements Pattern.
func (p ProducerConsumer) Step(proc, t int, r *rng.RNG) Action {
	if proc != 0 {
		return Idle
	}
	if r.Bernoulli(p.GenP) {
		return Generate
	}
	return Consume
}

// ActiveProcs implements Sparse: only processor 0 ever acts.
func (p ProducerConsumer) ActiveProcs() []int { return []int{0} }

// Uniform has every processor generate with probability GenP and consume
// with probability ConP each step, homogeneously.
type Uniform struct {
	GenP, ConP float64
}

// Name implements Pattern.
func (u Uniform) Name() string {
	return fmt.Sprintf("uniform(g=%.2f,c=%.2f)", u.GenP, u.ConP)
}

// Step implements Pattern.
func (u Uniform) Step(proc, t int, r *rng.RNG) Action {
	if r.Bernoulli(u.GenP) {
		return Generate
	}
	if r.Bernoulli(u.ConP) {
		return Consume
	}
	return Idle
}

// Burst alternates machine-wide between a generation burst of BurstLen
// steps (every processor generates with probability HighG) and a drain
// window of DrainLen steps (every processor consumes with probability
// HighC). An adversarial pattern for the extension experiments.
type Burst struct {
	BurstLen, DrainLen int
	HighG, HighC       float64
}

// Name implements Pattern.
func (b Burst) Name() string {
	return fmt.Sprintf("burst(%d/%d)", b.BurstLen, b.DrainLen)
}

// Step implements Pattern.
func (b Burst) Step(proc, t int, r *rng.RNG) Action {
	period := b.BurstLen + b.DrainLen
	if period <= 0 {
		return Idle
	}
	if t%period < b.BurstLen {
		if r.Bernoulli(b.HighG) {
			return Generate
		}
		return Idle
	}
	if r.Bernoulli(b.HighC) {
		return Consume
	}
	return Idle
}

// Hotspot concentrates all generation on the first Hot processors while
// every processor consumes with probability ConP — the worst case for a
// balancer because work enters the system at a single point.
type Hotspot struct {
	Hot        int
	GenP, ConP float64
}

// Name implements Pattern.
func (h Hotspot) Name() string { return fmt.Sprintf("hotspot(%d)", h.Hot) }

// Step implements Pattern.
func (h Hotspot) Step(proc, t int, r *rng.RNG) Action {
	if proc < h.Hot && r.Bernoulli(h.GenP) {
		return Generate
	}
	if r.Bernoulli(h.ConP) {
		return Consume
	}
	return Idle
}

// Script replays a fixed action matrix: Actions[t][proc]. Steps beyond the
// script, or processors beyond a row, idle. It is fully deterministic and
// exists for unit tests of the simulator and balancer.
type Script struct {
	Actions [][]Action
}

// Name implements Pattern.
func (s *Script) Name() string { return "script" }

// Step implements Pattern.
func (s *Script) Step(proc, t int, r *rng.RNG) Action {
	if t >= len(s.Actions) || proc >= len(s.Actions[t]) {
		return Idle
	}
	return s.Actions[t][proc]
}
