package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"lmbalance/internal/rng"
)

// This file provides trace-driven workloads: a recorded sequence of
// (step, processor, action) events that can be written to and read from
// CSV. It is the repository's substitute for replaying production traces
// (none of the paper's application traces survive): any probabilistic
// Pattern can be sampled into a concrete trace once and then replayed
// bit-identically across algorithms, isolating algorithm randomness from
// workload randomness.

// TraceEvent is one recorded workload event. Idle steps are not recorded.
type TraceEvent struct {
	Step   int
	Proc   int
	Action Action
}

// Trace is a Pattern that replays recorded events.
type Trace struct {
	events map[traceKey]Action
	steps  int
	n      int
}

type traceKey struct{ step, proc int }

// NewTrace builds a replayable Pattern from events. The trace's horizon
// and processor count are inferred from the events.
func NewTrace(events []TraceEvent) (*Trace, error) {
	t := &Trace{events: make(map[traceKey]Action, len(events))}
	for i, e := range events {
		if e.Step < 0 || e.Proc < 0 {
			return nil, fmt.Errorf("workload: trace event %d has negative step/proc", i)
		}
		switch e.Action {
		case Generate, Consume, GenerateAndConsume:
		default:
			return nil, fmt.Errorf("workload: trace event %d has unplayable action %v", i, e.Action)
		}
		key := traceKey{e.Step, e.Proc}
		if _, dup := t.events[key]; dup {
			return nil, fmt.Errorf("workload: duplicate trace event at step %d proc %d", e.Step, e.Proc)
		}
		t.events[key] = e.Action
		if e.Step >= t.steps {
			t.steps = e.Step + 1
		}
		if e.Proc >= t.n {
			t.n = e.Proc + 1
		}
	}
	return t, nil
}

// Name implements Pattern.
func (t *Trace) Name() string {
	return fmt.Sprintf("trace(%d events,%d steps,%d procs)", len(t.events), t.steps, t.n)
}

// Steps returns the trace horizon (last event step + 1).
func (t *Trace) Steps() int { return t.steps }

// Procs returns the number of processors the trace addresses.
func (t *Trace) Procs() int { return t.n }

// Step implements Pattern by pure lookup; the RNG is unused.
func (t *Trace) Step(proc, step int, r *rng.RNG) Action {
	if a, ok := t.events[traceKey{step, proc}]; ok {
		return a
	}
	return Idle
}

// Record samples a probabilistic pattern into a concrete event list for n
// processors over the given number of steps, using r for the pattern's
// randomness.
func Record(p Pattern, n, steps int, r *rng.RNG) []TraceEvent {
	var events []TraceEvent
	for t := 0; t < steps; t++ {
		for i := 0; i < n; i++ {
			if a := p.Step(i, t, r); a != Idle {
				events = append(events, TraceEvent{Step: t, Proc: i, Action: a})
			}
		}
	}
	return events
}

// actionCode maps actions to their CSV encoding.
func actionCode(a Action) (string, error) {
	switch a {
	case Generate:
		return "g", nil
	case Consume:
		return "c", nil
	case GenerateAndConsume:
		return "gc", nil
	default:
		return "", fmt.Errorf("workload: action %v has no trace encoding", a)
	}
}

// actionFromCode is the inverse of actionCode.
func actionFromCode(s string) (Action, error) {
	switch s {
	case "g":
		return Generate, nil
	case "c":
		return Consume, nil
	case "gc":
		return GenerateAndConsume, nil
	default:
		return Idle, fmt.Errorf("workload: unknown action code %q", s)
	}
}

// WriteTrace writes events as CSV with header "step,proc,action".
func WriteTrace(w io.Writer, events []TraceEvent) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"step", "proc", "action"}); err != nil {
		return err
	}
	for i, e := range events {
		code, err := actionCode(e.Action)
		if err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
		rec := []string{strconv.Itoa(e.Step), strconv.Itoa(e.Proc), code}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTrace parses a CSV trace written by WriteTrace and returns the
// replayable Pattern.
func ReadTrace(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace header: %w", err)
	}
	if header[0] != "step" || header[1] != "proc" || header[2] != "action" {
		return nil, fmt.Errorf("workload: unexpected trace header %v", header)
	}
	var events []TraceEvent
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		step, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad step %q", line, rec[0])
		}
		proc, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad proc %q", line, rec[1])
		}
		action, err := actionFromCode(rec[2])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		events = append(events, TraceEvent{Step: step, Proc: proc, Action: action})
	}
	return NewTrace(events)
}
