package workload

import (
	"bytes"
	"strings"
	"testing"

	"lmbalance/internal/rng"
)

func TestNewTraceValidation(t *testing.T) {
	if _, err := NewTrace([]TraceEvent{{Step: -1, Proc: 0, Action: Generate}}); err == nil {
		t.Fatal("negative step accepted")
	}
	if _, err := NewTrace([]TraceEvent{{Step: 0, Proc: 0, Action: Idle}}); err == nil {
		t.Fatal("idle event accepted")
	}
	if _, err := NewTrace([]TraceEvent{
		{Step: 1, Proc: 2, Action: Generate},
		{Step: 1, Proc: 2, Action: Consume},
	}); err == nil {
		t.Fatal("duplicate event accepted")
	}
}

func TestTraceReplay(t *testing.T) {
	tr, err := NewTrace([]TraceEvent{
		{Step: 0, Proc: 1, Action: Generate},
		{Step: 2, Proc: 0, Action: Consume},
		{Step: 2, Proc: 1, Action: GenerateAndConsume},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Steps() != 3 || tr.Procs() != 2 {
		t.Fatalf("dims %d/%d", tr.Steps(), tr.Procs())
	}
	r := rng.New(1)
	if tr.Step(1, 0, r) != Generate {
		t.Fatal("event missing")
	}
	if tr.Step(0, 0, r) != Idle {
		t.Fatal("unrecorded slot should idle")
	}
	if tr.Step(1, 2, r) != GenerateAndConsume {
		t.Fatal("combined action lost")
	}
	if !strings.Contains(tr.Name(), "3 events") {
		t.Fatalf("name %q", tr.Name())
	}
}

func TestRecordSamplesPattern(t *testing.T) {
	r := rng.New(7)
	events := Record(Uniform{GenP: 1, ConP: 0}, 3, 4, r)
	// Every proc generates every step: 12 events, all Generate.
	if len(events) != 12 {
		t.Fatalf("recorded %d events", len(events))
	}
	for _, e := range events {
		if e.Action != Generate {
			t.Fatalf("unexpected action %v", e.Action)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	r := rng.New(8)
	orig := Record(Uniform{GenP: 0.5, ConP: 0.5}, 5, 50, r)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Replay must match the recorded events exactly.
	rr := rng.New(9)
	idx := map[[2]int]Action{}
	for _, e := range orig {
		idx[[2]int{e.Step, e.Proc}] = e.Action
	}
	for step := 0; step < 50; step++ {
		for proc := 0; proc < 5; proc++ {
			want, ok := idx[[2]int{step, proc}]
			if !ok {
				want = Idle
			}
			if got := tr.Step(proc, step, rr); got != want {
				t.Fatalf("step %d proc %d: %v != %v", step, proc, got, want)
			}
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []string{
		"",                                 // no header
		"a,b,c\n1,2,g\n",                   // wrong header
		"step,proc,action\nx,2,g\n",        // bad step
		"step,proc,action\n1,y,g\n",        // bad proc
		"step,proc,action\n1,2,zz\n",       // bad action
		"step,proc,action\n1,2\n",          // wrong field count
		"step,proc,action\n1,2,g\n1,2,c\n", // duplicate
		"step,proc,action\n-1,2,g\n",       // negative
	}
	for i, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted: %q", i, c)
		}
	}
}

func TestWriteTraceRejectsIdle(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, []TraceEvent{{Step: 0, Proc: 0, Action: Idle}}); err == nil {
		t.Fatal("idle event written")
	}
}
