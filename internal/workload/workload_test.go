package workload

import (
	"strings"
	"testing"

	"lmbalance/internal/rng"
)

func TestActionString(t *testing.T) {
	if Idle.String() != "idle" || Generate.String() != "generate" || Consume.String() != "consume" {
		t.Fatal("Action strings wrong")
	}
	if !strings.Contains(Action(9).String(), "9") {
		t.Fatal("unknown action string should include the value")
	}
}

func TestPaperBoundsValid(t *testing.T) {
	if err := PaperBounds().Validate(); err != nil {
		t.Fatalf("paper bounds invalid: %v", err)
	}
	b := PaperBounds()
	if b.GLow != 0.1 || b.GHigh != 0.9 || b.CLow != 0.1 || b.CHigh != 0.7 ||
		b.LenLow != 150 || b.LenHigh != 400 || b.Horizon != 500 {
		t.Fatal("paper bounds do not match §7")
	}
}

func TestBoundsValidation(t *testing.T) {
	cases := []PhaseBounds{
		{GLow: -0.1, GHigh: 0.5, CLow: 0, CHigh: 0.5, LenLow: 1, LenHigh: 2, Horizon: 10},
		{GLow: 0.5, GHigh: 0.1, CLow: 0, CHigh: 0.5, LenLow: 1, LenHigh: 2, Horizon: 10},
		{GLow: 0.1, GHigh: 0.5, CLow: 0.9, CHigh: 0.5, LenLow: 1, LenHigh: 2, Horizon: 10},
		{GLow: 0.1, GHigh: 0.5, CLow: 0, CHigh: 1.5, LenLow: 1, LenHigh: 2, Horizon: 10},
		{GLow: 0.1, GHigh: 0.5, CLow: 0, CHigh: 0.5, LenLow: 5, LenHigh: 2, Horizon: 10},
		{GLow: 0.1, GHigh: 0.5, CLow: 0, CHigh: 0.5, LenLow: 0, LenHigh: 2, Horizon: 10},
		{GLow: 0.1, GHigh: 0.5, CLow: 0, CHigh: 0.5, LenLow: 1, LenHigh: 2, Horizon: 0},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestNewPhasesCoversHorizon(t *testing.T) {
	r := rng.New(1)
	p, err := NewPhases(16, PaperBounds(), r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		phases := p.PhasesOf(i)
		if len(phases) == 0 {
			t.Fatalf("proc %d has no phases", i)
		}
		// Phases must tile [0, horizon) without gaps.
		next := 0
		for _, ph := range phases {
			if ph.Start != next {
				t.Fatalf("proc %d phase starts at %d, want %d", i, ph.Start, next)
			}
			length := ph.End - ph.Start + 1
			if length < 150 || length > 400 {
				t.Fatalf("proc %d phase length %d outside [150,400]", i, length)
			}
			if ph.G < 0.1 || ph.G > 0.9 || ph.C < 0.1 || ph.C > 0.7 {
				t.Fatalf("proc %d phase probabilities out of bounds: %+v", i, ph)
			}
			next = ph.End + 1
		}
		if next < 500 {
			t.Fatalf("proc %d phases end at %d, horizon not covered", i, next)
		}
	}
}

func TestNewPhasesErrors(t *testing.T) {
	r := rng.New(1)
	if _, err := NewPhases(0, PaperBounds(), r); err == nil {
		t.Fatal("n=0 accepted")
	}
	bad := PaperBounds()
	bad.Horizon = -1
	if _, err := NewPhases(4, bad, r); err == nil {
		t.Fatal("bad bounds accepted")
	}
}

func TestPhasesStepRates(t *testing.T) {
	// One explicit phase with G=0.6, C=0.5. Generation and consumption
	// are drawn independently (§7): P(both)=0.3, P(gen only)=0.3,
	// P(con only)=0.2, P(idle)=0.2.
	p := NewPhasesExplicit("t", [][]Phase{{{G: 0.6, C: 0.5, Start: 0, End: 999999}}})
	r := rng.New(9)
	var gen, con, both, idle int
	const n = 200000
	for i := 0; i < n; i++ {
		switch p.Step(0, i, r) {
		case Generate:
			gen++
		case Consume:
			con++
		case GenerateAndConsume:
			both++
		default:
			idle++
		}
	}
	check := func(name string, got int, want float64) {
		rate := float64(got) / n
		if rate < want-0.01 || rate > want+0.01 {
			t.Fatalf("%s rate %.3f, want ≈%.3f", name, rate, want)
		}
	}
	check("generate-only", gen, 0.3)
	check("consume-only", con, 0.2)
	check("both", both, 0.3)
	check("idle", idle, 0.2)
}

func TestPhasesOutsideWindowIdle(t *testing.T) {
	p := NewPhasesExplicit("t", [][]Phase{{{G: 1, C: 1, Start: 10, End: 20}}})
	r := rng.New(1)
	if a := p.Step(0, 5, r); a != Idle {
		t.Fatalf("before phase: %v", a)
	}
	if a := p.Step(0, 21, r); a != Idle {
		t.Fatalf("after phase: %v", a)
	}
	// G=1 and C=1: both events fire every in-window step.
	if a := p.Step(0, 10, r); a != GenerateAndConsume {
		t.Fatalf("inside phase with G=1,C=1: %v", a)
	}
	if a := p.Step(0, 20, r); a != GenerateAndConsume {
		t.Fatalf("inclusive end: %v", a)
	}
}

func TestOneProducer(t *testing.T) {
	var p OneProducer
	r := rng.New(1)
	for tstep := 0; tstep < 10; tstep++ {
		if p.Step(0, tstep, r) != Generate {
			t.Fatal("proc 0 must always generate")
		}
		for proc := 1; proc < 5; proc++ {
			if p.Step(proc, tstep, r) != Idle {
				t.Fatal("other procs must idle")
			}
		}
	}
	if p.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestProducerConsumer(t *testing.T) {
	p := ProducerConsumer{GenP: 0.7}
	r := rng.New(2)
	var gen, con int
	const n = 100000
	for i := 0; i < n; i++ {
		switch p.Step(0, i, r) {
		case Generate:
			gen++
		case Consume:
			con++
		default:
			t.Fatal("producer-consumer proc 0 never idles")
		}
	}
	if rate := float64(gen) / n; rate < 0.69 || rate > 0.71 {
		t.Fatalf("generate rate %.3f", rate)
	}
	if gen+con != n {
		t.Fatal("counts don't add up")
	}
	if p.Step(3, 0, r) != Idle {
		t.Fatal("other procs must idle")
	}
}

func TestUniform(t *testing.T) {
	p := Uniform{GenP: 0.3, ConP: 0.5}
	r := rng.New(3)
	var gen, con, idle int
	const n = 200000
	for i := 0; i < n; i++ {
		switch p.Step(i%8, i, r) {
		case Generate:
			gen++
		case Consume:
			con++
		default:
			idle++
		}
	}
	// P(gen)=0.3, P(con)=0.7*0.5=0.35, P(idle)=0.35
	if rate := float64(gen) / n; rate < 0.29 || rate > 0.31 {
		t.Fatalf("gen rate %.3f", rate)
	}
	if rate := float64(con) / n; rate < 0.34 || rate > 0.36 {
		t.Fatalf("con rate %.3f", rate)
	}
}

func TestBurst(t *testing.T) {
	p := Burst{BurstLen: 10, DrainLen: 5, HighG: 1, HighC: 1}
	r := rng.New(4)
	for tstep := 0; tstep < 10; tstep++ {
		if p.Step(0, tstep, r) != Generate {
			t.Fatalf("step %d should generate", tstep)
		}
	}
	for tstep := 10; tstep < 15; tstep++ {
		if p.Step(0, tstep, r) != Consume {
			t.Fatalf("step %d should consume", tstep)
		}
	}
	// Period wraps.
	if p.Step(0, 15, r) != Generate {
		t.Fatal("period should wrap")
	}
	// Degenerate period idles rather than dividing by zero.
	z := Burst{}
	if z.Step(0, 0, r) != Idle {
		t.Fatal("zero-period burst should idle")
	}
}

func TestHotspot(t *testing.T) {
	p := Hotspot{Hot: 2, GenP: 1, ConP: 0}
	r := rng.New(5)
	if p.Step(0, 0, r) != Generate || p.Step(1, 0, r) != Generate {
		t.Fatal("hot processors must generate")
	}
	if p.Step(2, 0, r) != Idle {
		t.Fatal("cold processor with ConP=0 must idle")
	}
	p2 := Hotspot{Hot: 1, GenP: 0, ConP: 1}
	if p2.Step(5, 0, r) != Consume {
		t.Fatal("cold processor with ConP=1 must consume")
	}
}

func TestScript(t *testing.T) {
	s := &Script{Actions: [][]Action{
		{Generate, Idle},
		{Consume, Generate},
	}}
	r := rng.New(1)
	if s.Step(0, 0, r) != Generate || s.Step(1, 0, r) != Idle {
		t.Fatal("step 0 wrong")
	}
	if s.Step(0, 1, r) != Consume || s.Step(1, 1, r) != Generate {
		t.Fatal("step 1 wrong")
	}
	if s.Step(0, 2, r) != Idle {
		t.Fatal("beyond script should idle")
	}
	if s.Step(7, 0, r) != Idle {
		t.Fatal("beyond row should idle")
	}
}

func TestPatternNames(t *testing.T) {
	r := rng.New(1)
	p, _ := NewPhases(2, PaperBounds(), r)
	for _, pat := range []Pattern{
		p, OneProducer{}, ProducerConsumer{GenP: 0.5},
		Uniform{}, Burst{}, Hotspot{}, &Script{},
	} {
		if pat.Name() == "" {
			t.Fatalf("%T has empty name", pat)
		}
	}
}
