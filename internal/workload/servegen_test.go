package workload

import (
	"bytes"
	"math"
	"testing"
	"time"

	"lmbalance/internal/rng"
)

// TestBoundedParetoMeanMatchesClosedForm is the satellite contract: the
// sampler's empirical mean must land on the closed-form expectation
// within tolerance on a deterministic seed. α = 1.5 on [1, 100] is the
// benchmark's demand distribution.
func TestBoundedParetoMeanMatchesClosedForm(t *testing.T) {
	for _, d := range []BoundedPareto{
		{Alpha: 1.5, Lo: 1, Hi: 100},
		{Alpha: 1.1, Lo: 1, Hi: 1000},
		{Alpha: 2.5, Lo: 0.5, Hi: 50},
		{Alpha: 1, Lo: 1, Hi: 100}, // log-limit branch
	} {
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		r := rng.New(12345)
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			x := d.Sample(r)
			if x < d.Lo || x > d.Hi {
				t.Fatalf("α=%g: sample %g outside [%g, %g]", d.Alpha, x, d.Lo, d.Hi)
			}
			sum += x
		}
		got, want := sum/n, d.Mean()
		if rel := math.Abs(got-want) / want; rel > 0.02 {
			t.Errorf("α=%g: empirical mean %.4f vs closed form %.4f (rel %.3f > 0.02)",
				d.Alpha, got, want, rel)
		}
	}
}

// TestBoundedParetoTailMatchesCCDF checks the sampler against the
// closed-form complementary CDF at several tail points — the part of
// the distribution that drives p99 sojourns.
func TestBoundedParetoTailMatchesCCDF(t *testing.T) {
	d := BoundedPareto{Alpha: 1.5, Lo: 1, Hi: 100}
	r := rng.New(777)
	const n = 200000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = d.Sample(r)
	}
	for _, x := range []float64{2, 5, 10, 30} {
		var above int
		for _, s := range samples {
			if s > x {
				above++
			}
		}
		got, want := float64(above)/n, d.CCDF(x)
		// Binomial std error at n=200k is < 0.0012 everywhere here; 4σ.
		if math.Abs(got-want) > 0.005 {
			t.Errorf("P(X>%g): empirical %.4f vs closed form %.4f", x, got, want)
		}
	}
	if d.CCDF(0.5) != 1 || d.CCDF(100) != 0 {
		t.Error("CCDF endpoints wrong")
	}
}

func TestSampleUnitsAtLeastOne(t *testing.T) {
	d := BoundedPareto{Alpha: 3, Lo: 0.1, Hi: 2} // mass below 0.5 rounds to 0 without the clamp
	r := rng.New(1)
	for i := 0; i < 1000; i++ {
		if u := d.SampleUnits(r); u < 1 {
			t.Fatalf("SampleUnits returned %d", u)
		}
	}
}

// TestRateEnvelopeIntegrates is the other satellite contract: over any
// whole number of periods the scheduled arrival count matches the
// envelope's per-window jobs/sec integral, and the per-window empirical
// rates match the configured rates.
func TestRateEnvelopeIntegrates(t *testing.T) {
	env := RateEnvelope{
		{Dur: 700 * time.Millisecond, Rate: 8000},
		{Dur: 300 * time.Millisecond, Rate: 13000},
	}
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	const cycles = 5
	horizon := time.Duration(cycles) * env.Period()
	spec := ArrivalSpec{Env: env, Demand: BoundedPareto{Alpha: 1.5, Lo: 1, Hi: 100}, Horizon: horizon}
	arr, err := spec.Schedule(rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	wantTotal := env.Jobs(horizon) // 5 · (8000·0.7 + 13000·0.3) = 47500
	if math.Abs(float64(len(arr))-wantTotal) > 4*math.Sqrt(wantTotal) {
		t.Fatalf("scheduled %d arrivals, expected %.0f ± %.0f", len(arr), wantTotal, 4*math.Sqrt(wantTotal))
	}
	// Bucket arrivals by envelope window across all cycles.
	counts := make([]int, len(env))
	var last time.Duration = -1
	for _, a := range arr {
		if a.At < last {
			t.Fatal("arrivals out of time order")
		}
		last = a.At
		if a.Node != -1 {
			t.Fatalf("fresh schedule pinned to node %d", a.Node)
		}
		if a.Units < 1 {
			t.Fatalf("arrival with %d units", a.Units)
		}
		off := a.At % env.Period()
		for w := range env {
			if off < env[w].Dur {
				counts[w]++
				break
			}
			off -= env[w].Dur
		}
	}
	for w, want := range []float64{8000 * 0.7 * cycles, 13000 * 0.3 * cycles} {
		got := float64(counts[w])
		if math.Abs(got-want) > 4*math.Sqrt(want) {
			t.Errorf("window %d: %d arrivals, expected %.0f ± %.0f", w, counts[w], want, 4*math.Sqrt(want))
		}
	}
	// RateAt cycles: the profile at t and t+period agree.
	for _, off := range []time.Duration{0, 350 * time.Millisecond, 750 * time.Millisecond} {
		if env.RateAt(off) != env.RateAt(off+env.Period()) {
			t.Errorf("RateAt not periodic at %v", off)
		}
	}
	if env.MaxRate() != 13000 {
		t.Errorf("MaxRate = %g", env.MaxRate())
	}
}

func TestParseEnvelope(t *testing.T) {
	env, err := ParseEnvelope("8000x700ms,13000x300ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(env) != 2 || env[0].Rate != 8000 || env[0].Dur != 700*time.Millisecond ||
		env[1].Rate != 13000 || env[1].Dur != 300*time.Millisecond {
		t.Fatalf("parsed %+v", env)
	}
	if s := env.String(); s != "8000x700ms,13000x300ms" {
		t.Fatalf("String() = %q", s)
	}
	for _, bad := range []string{"", "8000", "x700ms", "8000x", "8000xnope", "-1x700ms,0x1s", "0x1s"} {
		if _, err := ParseEnvelope(bad); err == nil {
			t.Errorf("ParseEnvelope(%q) accepted", bad)
		}
	}
}

// TestTraceArrivalsRoundTrip: a recorded trace written to CSV, read
// back through the tracefile reader, and converted to arrivals yields
// one pinned unit arrival per Generate/GenerateAndConsume event at
// step·tick — the replay path for the serving front-end.
func TestTraceArrivalsRoundTrip(t *testing.T) {
	events := []TraceEvent{
		{Step: 0, Proc: 1, Action: Generate},
		{Step: 0, Proc: 3, Action: GenerateAndConsume},
		{Step: 1, Proc: 0, Action: Consume}, // no arrival: consumption is the cluster's job
		{Step: 2, Proc: 2, Action: Generate},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tick := 5 * time.Millisecond
	arr, err := TraceArrivals(tr, tick)
	if err != nil {
		t.Fatal(err)
	}
	want := []Arrival{
		{At: 0, Node: 1, Units: 1},
		{At: 0, Node: 3, Units: 1},
		{At: 2 * tick, Node: 2, Units: 1},
	}
	if len(arr) != len(want) {
		t.Fatalf("got %d arrivals %v, want %d", len(arr), arr, len(want))
	}
	for i := range want {
		if arr[i] != want[i] {
			t.Fatalf("arrival %d = %+v, want %+v", i, arr[i], want[i])
		}
	}
	if _, err := TraceArrivals(nil, tick); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := TraceArrivals(tr, 0); err == nil {
		t.Error("zero tick accepted")
	}
}
