package workload

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"lmbalance/internal/rng"
)

// Production-shaped open-loop traffic for the serving front-end
// (internal/serve): a nonhomogeneous Poisson arrival process whose rate
// follows a multi-period diurnal envelope, with heavy-tailed
// bounded-Pareto service demands. Arrivals are generated as a concrete
// schedule up front — open-loop means the offered load never waits for
// the system, so queueing shows up as sojourn time, not as a slowed
// generator.

// RateWindow is one window of a rate envelope: jobs arrive at Rate
// jobs/second for Dur.
type RateWindow struct {
	Dur  time.Duration
	Rate float64 // jobs per second
}

// RateEnvelope is a piecewise-constant arrival-rate profile. The
// windows repeat cyclically — a 24 h envelope replayed over a multi-day
// horizon is the diurnal pattern production traces show, compressed
// here to sub-second periods so experiments finish.
type RateEnvelope []RateWindow

// Validate checks the envelope is usable: non-empty, every window with
// positive duration and non-negative rate, at least one positive rate.
func (e RateEnvelope) Validate() error {
	if len(e) == 0 {
		return fmt.Errorf("workload: empty rate envelope")
	}
	anyPositive := false
	for i, w := range e {
		if w.Dur <= 0 {
			return fmt.Errorf("workload: envelope window %d has non-positive duration %v", i, w.Dur)
		}
		if w.Rate < 0 || math.IsNaN(w.Rate) || math.IsInf(w.Rate, 0) {
			return fmt.Errorf("workload: envelope window %d has invalid rate %v", i, w.Rate)
		}
		if w.Rate > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		return fmt.Errorf("workload: envelope has no positive-rate window")
	}
	return nil
}

// Period returns the total duration of one envelope cycle.
func (e RateEnvelope) Period() time.Duration {
	var p time.Duration
	for _, w := range e {
		p += w.Dur
	}
	return p
}

// RateAt returns the arrival rate at time t from the start of the
// process, cycling the envelope.
func (e RateEnvelope) RateAt(t time.Duration) float64 {
	p := e.Period()
	if p <= 0 {
		return 0
	}
	t %= p
	if t < 0 {
		t += p
	}
	for _, w := range e {
		if t < w.Dur {
			return w.Rate
		}
		t -= w.Dur
	}
	return e[len(e)-1].Rate
}

// MaxRate returns the highest window rate — the majorizing rate for
// thinning.
func (e RateEnvelope) MaxRate() float64 {
	var m float64
	for _, w := range e {
		if w.Rate > m {
			m = w.Rate
		}
	}
	return m
}

// Jobs returns the expected number of arrivals over a horizon: the
// integral of the cycling rate profile, window by window.
func (e RateEnvelope) Jobs(horizon time.Duration) float64 {
	p := e.Period()
	if p <= 0 || horizon <= 0 {
		return 0
	}
	full := float64(horizon / p)
	var perCycle float64
	for _, w := range e {
		perCycle += w.Rate * w.Dur.Seconds()
	}
	total := full * perCycle
	rem := horizon % p
	for _, w := range e {
		if rem <= 0 {
			break
		}
		d := w.Dur
		if rem < d {
			d = rem
		}
		total += w.Rate * d.Seconds()
		rem -= w.Dur
	}
	return total
}

// String renders the envelope in the form ParseEnvelope reads.
func (e RateEnvelope) String() string {
	parts := make([]string, len(e))
	for i, w := range e {
		parts[i] = fmt.Sprintf("%gx%s", w.Rate, w.Dur)
	}
	return strings.Join(parts, ",")
}

// ParseEnvelope parses "rate1xdur1,rate2xdur2,…" — e.g.
// "8000x700ms,13000x300ms" is 8000 jobs/s for 700 ms then 13000 jobs/s
// for 300 ms, repeating. A bare "rateXdur" single window is fine.
func ParseEnvelope(s string) (RateEnvelope, error) {
	var e RateEnvelope
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		i := strings.IndexByte(part, 'x')
		if i < 0 {
			return nil, fmt.Errorf("workload: envelope window %q: want rate x duration", part)
		}
		rate, err := strconv.ParseFloat(part[:i], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: envelope rate %q: %v", part[:i], err)
		}
		dur, err := time.ParseDuration(part[i+1:])
		if err != nil {
			return nil, fmt.Errorf("workload: envelope duration %q: %v", part[i+1:], err)
		}
		e = append(e, RateWindow{Dur: dur, Rate: rate})
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

// BoundedPareto is the bounded-Pareto demand distribution on [Lo, Hi]
// with shape Alpha — the standard heavy-tailed model for job service
// demands (most jobs tiny, rare jobs thousands of times larger, but
// bounded so moments exist and one job cannot exceed the experiment).
type BoundedPareto struct {
	Alpha  float64 // tail index; smaller = heavier tail
	Lo, Hi float64 // support bounds, 0 < Lo < Hi
}

// Validate checks the parameters define a distribution.
func (d BoundedPareto) Validate() error {
	if !(d.Alpha > 0) || math.IsInf(d.Alpha, 0) {
		return fmt.Errorf("workload: bounded-Pareto alpha %v must be positive and finite", d.Alpha)
	}
	if !(d.Lo > 0) || !(d.Hi > d.Lo) {
		return fmt.Errorf("workload: bounded-Pareto needs 0 < Lo < Hi, got [%v, %v]", d.Lo, d.Hi)
	}
	return nil
}

// Mean returns the closed-form expectation
//
//	E[X] = α·Lo^α/(α−1) · (Lo^(1−α) − Hi^(1−α)) / (1 − (Lo/Hi)^α)
//
// (with the α = 1 limit handled via ln(Hi/Lo)).
func (d BoundedPareto) Mean() float64 {
	r := 1 - math.Pow(d.Lo/d.Hi, d.Alpha)
	if d.Alpha == 1 {
		return d.Lo * math.Log(d.Hi/d.Lo) / r
	}
	return d.Alpha * math.Pow(d.Lo, d.Alpha) / (d.Alpha - 1) *
		(math.Pow(d.Lo, 1-d.Alpha) - math.Pow(d.Hi, 1-d.Alpha)) / r
}

// CCDF returns P(X > x).
func (d BoundedPareto) CCDF(x float64) float64 {
	if x < d.Lo {
		return 1
	}
	if x >= d.Hi {
		return 0
	}
	num := math.Pow(d.Lo/x, d.Alpha) - math.Pow(d.Lo/d.Hi, d.Alpha)
	return num / (1 - math.Pow(d.Lo/d.Hi, d.Alpha))
}

// Sample draws one value by inverse-CDF:
//
//	x = Lo · (1 − U·(1 − (Lo/Hi)^α))^(−1/α)
func (d BoundedPareto) Sample(r *rng.RNG) float64 {
	u := r.Float64()
	return d.Lo * math.Pow(1-u*(1-math.Pow(d.Lo/d.Hi, d.Alpha)), -1/d.Alpha)
}

// SampleUnits draws a demand in whole unit packets (≥ 1): the paper's
// model is unit-packet loads, so a job's continuous demand is rounded
// to the nearest packet count.
func (d BoundedPareto) SampleUnits(r *rng.RNG) int {
	u := int(math.Round(d.Sample(r)))
	if u < 1 {
		u = 1
	}
	return u
}

// Arrival is one scheduled job submission. Node < 0 means unpinned —
// the driver picks a target according to its placement policy; Node ≥ 0
// pins the submission to that node (trace replay).
type Arrival struct {
	At    time.Duration // offset from the start of the run
	Node  int
	Units int
}

// ArrivalSpec describes an open-loop arrival process: rate envelope,
// demand distribution, horizon.
type ArrivalSpec struct {
	Env     RateEnvelope
	Demand  BoundedPareto
	Horizon time.Duration
}

// Schedule generates the concrete arrival schedule by thinning: draw a
// homogeneous Poisson process at MaxRate, keep each point with
// probability RateAt(t)/MaxRate. Exact for piecewise-constant
// envelopes, deterministic for a given r. Arrivals come out in time
// order with Node = -1 (unpinned).
func (s ArrivalSpec) Schedule(r *rng.RNG) ([]Arrival, error) {
	if err := s.Env.Validate(); err != nil {
		return nil, err
	}
	if err := s.Demand.Validate(); err != nil {
		return nil, err
	}
	if s.Horizon <= 0 {
		return nil, fmt.Errorf("workload: non-positive horizon %v", s.Horizon)
	}
	peak := s.Env.MaxRate()
	var out []Arrival
	t := time.Duration(0)
	for {
		// Exponential inter-arrival at the majorizing rate.
		gap := -math.Log(1-r.Float64()) / peak
		t += time.Duration(gap * float64(time.Second))
		if t >= s.Horizon {
			return out, nil
		}
		if r.Float64()*peak >= s.Env.RateAt(t) {
			continue // thinned out
		}
		out = append(out, Arrival{At: t, Node: -1, Units: s.Demand.SampleUnits(r)})
	}
}

// TraceArrivals converts a recorded trace (tracefile.go) into an
// arrival schedule for the serving path: every Generate or
// GenerateAndConsume event becomes a one-unit arrival pinned to its
// processor at step·tick. Consume halves of events are ignored — on the
// serving path consumption is what the cluster does, not what clients
// submit. Arrivals come out in (time, node) order.
func TraceArrivals(t *Trace, tick time.Duration) ([]Arrival, error) {
	if t == nil {
		return nil, fmt.Errorf("workload: nil trace")
	}
	if tick <= 0 {
		return nil, fmt.Errorf("workload: non-positive tick %v", tick)
	}
	var out []Arrival
	for step := 0; step < t.Steps(); step++ {
		for proc := 0; proc < t.Procs(); proc++ {
			switch t.Step(proc, step, nil) {
			case Generate, GenerateAndConsume:
				out = append(out, Arrival{At: time.Duration(step) * tick, Node: proc, Units: 1})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Node < out[j].Node
	})
	return out, nil
}
